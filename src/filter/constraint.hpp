// Attribute constraints: the atoms of content-based subscription filters.
//
// A constraint restricts a single named attribute (paper Sec. 2.1,
// subscriptions like (cost < "3 EURO"), (location ∈ myloc)). The three
// relations routing needs are implemented here:
//
//   matches(v)   — does value v satisfy the constraint?
//   covers(c)    — does this constraint accept a superset of values of c?
//                  (exact where decidable; never true when false)
//   overlaps(c)  — may both accept a common value? (conservative: true
//                  unless provably disjoint — safe for routing)
//   try_merge(c) — exact union if representable as one constraint
//                  ("perfect merging", Mühl [19])
//
// covers() is the basis of covering routing (paper Sec. 2.2); try_merge
// is the basis of merging routing.
#ifndef REBECA_FILTER_CONSTRAINT_HPP
#define REBECA_FILTER_CONSTRAINT_HPP

#include <optional>
#include <ostream>
#include <set>
#include <string>

#include "src/filter/value.hpp"

namespace rebeca::filter {

enum class Op {
  any,     // attribute must exist; any value
  eq,      // == operand
  ne,      // != operand
  lt,      // <  operand
  le,      // <= operand
  gt,      // >  operand
  ge,      // >= operand
  in_set,  // value ∈ operand set
  prefix,  // string value starts with operand string
  range,   // lo <= value <= hi (both inclusive)
};

const char* op_name(Op op);

class Constraint {
 public:
  /// Constructors are named to keep operand arity honest.
  static Constraint any();
  static Constraint eq(Value v);
  static Constraint ne(Value v);
  static Constraint lt(Value v);
  static Constraint le(Value v);
  static Constraint gt(Value v);
  static Constraint ge(Value v);
  static Constraint in_set(std::set<Value> values);
  static Constraint prefix(std::string p);
  static Constraint range(Value lo, Value hi);

  [[nodiscard]] Op op() const { return op_; }
  [[nodiscard]] const Value& operand() const { return operand_; }
  [[nodiscard]] const Value& hi() const { return hi_; }
  [[nodiscard]] const std::set<Value>& values() const { return values_; }

  [[nodiscard]] bool matches(const Value& v) const;
  [[nodiscard]] bool covers(const Constraint& other) const;
  [[nodiscard]] bool overlaps(const Constraint& other) const;
  [[nodiscard]] std::optional<Constraint> try_merge(const Constraint& other) const;

  /// Structural identity (same op and operands) — used to key routing
  /// tables; distinct from semantic equivalence.
  friend bool operator==(const Constraint& a, const Constraint& b) {
    return a.op_ == b.op_ && a.operand_ == b.operand_ && a.hi_ == b.hi_ &&
           a.values_ == b.values_;
  }
  friend bool operator<(const Constraint& a, const Constraint& b);

  [[nodiscard]] std::string to_string() const;
  friend std::ostream& operator<<(std::ostream& os, const Constraint& c) {
    return os << c.to_string();
  }

 private:
  Constraint(Op op, Value operand, Value hi, std::set<Value> values)
      : op_(op), operand_(std::move(operand)), hi_(std::move(hi)),
        values_(std::move(values)) {}

  // Bounds of the accepted value interval for ordered ops; used by the
  // covering decision procedure. nullopt where not interval-shaped.
  struct Interval {
    std::optional<Value> lo, hi;  // nullopt = unbounded
    bool lo_strict = false, hi_strict = false;
  };
  [[nodiscard]] std::optional<Interval> as_interval() const;
  [[nodiscard]] bool interval_covers(const Interval& outer, const Constraint& inner) const;

  Op op_;
  Value operand_;          // eq/ne/lt/le/gt/ge operand; range lo; prefix string
  Value hi_;               // range hi
  std::set<Value> values_; // in_set members
};

}  // namespace rebeca::filter

#endif  // REBECA_FILTER_CONSTRAINT_HPP
