// Typed attribute values for the name/value-pair data model (paper
// Sec. 2.1: "the typically used name/value-pairs data model").
//
// Values are a closed variant over the types subscriptions constrain:
// integers, reals, strings and booleans. Numeric comparison is
// cross-type (an int64 compares numerically against a double), because a
// subscription (cost < 3) must match a notification (cost = 2.5).
#ifndef REBECA_FILTER_VALUE_HPP
#define REBECA_FILTER_VALUE_HPP

#include <cstdint>
#include <optional>
#include <ostream>
#include <string>
#include <variant>

namespace rebeca::filter {

class Value {
 public:
  using Storage = std::variant<std::int64_t, double, std::string, bool>;

  Value() : storage_(std::int64_t{0}) {}
  Value(std::int64_t v) : storage_(v) {}            // NOLINT(google-explicit-constructor)
  Value(int v) : storage_(std::int64_t{v}) {}       // NOLINT(google-explicit-constructor)
  Value(double v) : storage_(v) {}                  // NOLINT(google-explicit-constructor)
  Value(std::string v) : storage_(std::move(v)) {}  // NOLINT(google-explicit-constructor)
  Value(const char* v) : storage_(std::string(v)) {}  // NOLINT(google-explicit-constructor)
  Value(bool v) : storage_(v) {}                    // NOLINT(google-explicit-constructor)

  [[nodiscard]] bool is_int() const { return std::holds_alternative<std::int64_t>(storage_); }
  [[nodiscard]] bool is_double() const { return std::holds_alternative<double>(storage_); }
  [[nodiscard]] bool is_numeric() const { return is_int() || is_double(); }
  [[nodiscard]] bool is_string() const { return std::holds_alternative<std::string>(storage_); }
  [[nodiscard]] bool is_bool() const { return std::holds_alternative<bool>(storage_); }

  [[nodiscard]] std::int64_t as_int() const { return std::get<std::int64_t>(storage_); }
  [[nodiscard]] double as_double() const { return std::get<double>(storage_); }
  [[nodiscard]] const std::string& as_string() const { return std::get<std::string>(storage_); }
  [[nodiscard]] bool as_bool() const { return std::get<bool>(storage_); }

  /// Numeric view (int promoted to double); nullopt for non-numerics.
  [[nodiscard]] std::optional<double> numeric() const {
    if (is_int()) return static_cast<double>(as_int());
    if (is_double()) return as_double();
    return std::nullopt;
  }

  /// Three-way comparison across comparable types. Returns nullopt for
  /// incomparable type pairs (string vs. number, bool vs. number):
  /// constraints over incomparable values simply do not match.
  [[nodiscard]] std::optional<int> compare(const Value& other) const;

  /// Strict equality: comparable types with equal value (1 == 1.0).
  [[nodiscard]] bool equals(const Value& other) const {
    auto c = compare(other);
    return c.has_value() && *c == 0;
  }

  /// Structural equality and ordering: exact type then value. Used for
  /// canonical containers (set<Value>), NOT for match semantics.
  friend bool operator==(const Value& a, const Value& b) { return a.storage_ == b.storage_; }
  friend bool operator<(const Value& a, const Value& b) { return a.storage_ < b.storage_; }

  [[nodiscard]] std::string to_string() const;

  friend std::ostream& operator<<(std::ostream& os, const Value& v) {
    return os << v.to_string();
  }

 private:
  Storage storage_;
};

}  // namespace rebeca::filter

#endif  // REBECA_FILTER_VALUE_HPP
