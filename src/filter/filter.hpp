// Conjunctive content-based filters (paper Sec. 2.1/2.2).
//
// A Filter is a conjunction of per-attribute constraints. A notification
// matches iff every constrained attribute is present and satisfies its
// constraint; unconstrained attributes are unrestricted — hence fewer
// constraints means a broader filter, and the empty filter matches
// everything.
#ifndef REBECA_FILTER_FILTER_HPP
#define REBECA_FILTER_FILTER_HPP

#include <map>
#include <optional>
#include <string>

#include "src/filter/constraint.hpp"
#include "src/filter/notification.hpp"

namespace rebeca::filter {

class Filter {
 public:
  Filter() = default;

  /// Fluent builder: Filter().where("service", Constraint::eq("parking")).
  Filter& where(std::string attr, Constraint c) {
    constraints_.insert_or_assign(std::move(attr), std::move(c));
    return *this;
  }

  [[nodiscard]] bool empty() const { return constraints_.empty(); }
  [[nodiscard]] std::size_t size() const { return constraints_.size(); }
  [[nodiscard]] const std::map<std::string, Constraint>& constraints() const {
    return constraints_;
  }

  [[nodiscard]] const Constraint* find(const std::string& attr) const {
    auto it = constraints_.find(attr);
    return it == constraints_.end() ? nullptr : &it->second;
  }

  /// Removes the constraint on `attr` (no-op if absent).
  void erase(const std::string& attr) { constraints_.erase(attr); }

  [[nodiscard]] bool matches(const Notification& n) const;

  /// True if this filter accepts a superset of the notifications `other`
  /// accepts. Sound (never true when false); exact for the constraint
  /// pairs Constraint::covers decides exactly.
  [[nodiscard]] bool covers(const Filter& other) const;

  /// False only if the two filters provably share no matching
  /// notification (conservative, safe for routing decisions).
  [[nodiscard]] bool overlaps(const Filter& other) const;

  /// Exact union as a single filter, when representable: either one
  /// covers the other, or they differ in exactly one attribute whose
  /// constraints merge exactly (paper Sec. 2.2 "merging").
  [[nodiscard]] std::optional<Filter> try_merge(const Filter& other) const;

  /// Structural identity — used as a routing-table key.
  friend bool operator==(const Filter& a, const Filter& b) {
    return a.constraints_ == b.constraints_;
  }
  friend bool operator<(const Filter& a, const Filter& b) {
    return a.constraints_ < b.constraints_;
  }

  [[nodiscard]] std::string to_string() const;
  friend std::ostream& operator<<(std::ostream& os, const Filter& f) {
    return os << f.to_string();
  }

 private:
  std::map<std::string, Constraint> constraints_;
};

}  // namespace rebeca::filter

#endif  // REBECA_FILTER_FILTER_HPP
