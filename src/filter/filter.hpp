// Conjunctive content-based filters (paper Sec. 2.1/2.2).
//
// A Filter is a conjunction of per-attribute constraints. A notification
// matches iff every constrained attribute is present and satisfies its
// constraint; unconstrained attributes are unrestricted — hence fewer
// constraints means a broader filter, and the empty filter matches
// everything.
//
// Storage is a flat vector of terms sorted by interned AttrId, so
// matches/covers/overlaps/try_merge are linear sorted merges over
// integer keys. Ordering (operator<, the routing-table key order) and
// printing iterate in attribute-*name* order — the ordering the old
// string-keyed map induced — so nothing observable depends on the order
// in which attribute ids happened to be minted.
#ifndef REBECA_FILTER_FILTER_HPP
#define REBECA_FILTER_FILTER_HPP

#include <optional>
#include <string_view>
#include <vector>

#include "src/filter/attr.hpp"
#include "src/filter/constraint.hpp"
#include "src/filter/notification.hpp"

namespace rebeca::filter {

class Filter {
 public:
  struct Term {
    AttrId attr;
    const std::string* name;  // interned storage, stable for the process
    Constraint c;
  };

  Filter() = default;

  /// Fluent builder: Filter().where("service", Constraint::eq("parking")).
  Filter& where(std::string_view attr, Constraint c);
  Filter& where(AttrId attr, Constraint c);

  [[nodiscard]] bool empty() const { return terms_.empty(); }
  [[nodiscard]] std::size_t size() const { return terms_.size(); }
  /// Terms in ascending AttrId order.
  [[nodiscard]] const std::vector<Term>& terms() const { return terms_; }

  [[nodiscard]] const Constraint* find(std::string_view attr) const;
  [[nodiscard]] const Constraint* find(AttrId attr) const;

  /// Removes the constraint on `attr` (no-op if absent).
  void erase(std::string_view attr);

  [[nodiscard]] bool matches(const Notification& n) const;

  /// True if this filter accepts a superset of the notifications `other`
  /// accepts. Sound (never true when false); exact for the constraint
  /// pairs Constraint::covers decides exactly.
  [[nodiscard]] bool covers(const Filter& other) const;

  /// False only if the two filters provably share no matching
  /// notification (conservative, safe for routing decisions).
  [[nodiscard]] bool overlaps(const Filter& other) const;

  /// Exact union as a single filter, when representable: either one
  /// covers the other, or they differ in exactly one attribute whose
  /// constraints merge exactly (paper Sec. 2.2 "merging").
  [[nodiscard]] std::optional<Filter> try_merge(const Filter& other) const;

  /// Structural identity — used as a routing-table key. Equal attribute
  /// sets have equal id-sorted term vectors, so this is mint-order-free.
  friend bool operator==(const Filter& a, const Filter& b) {
    if (a.terms_.size() != b.terms_.size()) return false;
    for (std::size_t i = 0; i < a.terms_.size(); ++i) {
      if (a.terms_[i].attr != b.terms_[i].attr ||
          !(a.terms_[i].c == b.terms_[i].c)) {
        return false;
      }
    }
    return true;
  }
  /// Lexicographic over name-ordered (name, constraint) pairs: the exact
  /// strict weak order the old std::map<std::string, Constraint> storage
  /// induced, independent of attr-id mint order (which may vary with
  /// sweep-thread scheduling and must never leak into wire order).
  friend bool operator<(const Filter& a, const Filter& b);

  [[nodiscard]] std::string to_string() const;
  friend std::ostream& operator<<(std::ostream& os, const Filter& f) {
    return os << f.to_string();
  }

 private:
  std::vector<Term> terms_;  // sorted by AttrId
};

}  // namespace rebeca::filter

#endif  // REBECA_FILTER_FILTER_HPP
