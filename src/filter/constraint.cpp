#include "src/filter/constraint.hpp"

#include <algorithm>
#include <sstream>

#include "src/util/assert.hpp"

namespace rebeca::filter {

namespace {

bool starts_with(const std::string& s, const std::string& prefix) {
  return s.size() >= prefix.size() &&
         std::equal(prefix.begin(), prefix.end(), s.begin());
}

// Smallest string strictly greater than every string with prefix `p`
// (increment the last incrementable byte). nullopt if p is all 0xFF —
// then no such bound exists and prefix-related covering stays
// conservative.
std::optional<std::string> next_prefix(const std::string& p) {
  std::string q = p;
  for (auto it = q.rbegin(); it != q.rend(); ++it) {
    auto c = static_cast<unsigned char>(*it);
    if (c != 0xFF) {
      *it = static_cast<char>(c + 1);
      q.erase(q.size() - static_cast<std::size_t>(it - q.rbegin()));
      return q;
    }
  }
  return std::nullopt;
}

}  // namespace

const char* op_name(Op op) {
  switch (op) {
    case Op::any: return "any";
    case Op::eq: return "==";
    case Op::ne: return "!=";
    case Op::lt: return "<";
    case Op::le: return "<=";
    case Op::gt: return ">";
    case Op::ge: return ">=";
    case Op::in_set: return "in";
    case Op::prefix: return "prefix";
    case Op::range: return "range";
  }
  return "?";
}

Constraint Constraint::any() { return {Op::any, Value{}, Value{}, {}}; }
Constraint Constraint::eq(Value v) { return {Op::eq, std::move(v), Value{}, {}}; }
Constraint Constraint::ne(Value v) { return {Op::ne, std::move(v), Value{}, {}}; }
Constraint Constraint::lt(Value v) { return {Op::lt, std::move(v), Value{}, {}}; }
Constraint Constraint::le(Value v) { return {Op::le, std::move(v), Value{}, {}}; }
Constraint Constraint::gt(Value v) { return {Op::gt, std::move(v), Value{}, {}}; }
Constraint Constraint::ge(Value v) { return {Op::ge, std::move(v), Value{}, {}}; }

Constraint Constraint::in_set(std::set<Value> values) {
  return {Op::in_set, Value{}, Value{}, std::move(values)};
}

Constraint Constraint::prefix(std::string p) {
  return {Op::prefix, Value(std::move(p)), Value{}, {}};
}

Constraint Constraint::range(Value lo, Value hi) {
  REBECA_ASSERT(lo.compare(hi).value_or(1) <= 0,
                "range bounds inverted: " << lo << ".." << hi);
  return {Op::range, std::move(lo), std::move(hi), {}};
}

bool Constraint::matches(const Value& v) const {
  switch (op_) {
    case Op::any:
      return true;
    case Op::eq:
      return v.equals(operand_);
    case Op::ne:
      return !v.equals(operand_);
    case Op::lt: {
      auto c = v.compare(operand_);
      return c.has_value() && *c < 0;
    }
    case Op::le: {
      auto c = v.compare(operand_);
      return c.has_value() && *c <= 0;
    }
    case Op::gt: {
      auto c = v.compare(operand_);
      return c.has_value() && *c > 0;
    }
    case Op::ge: {
      auto c = v.compare(operand_);
      return c.has_value() && *c >= 0;
    }
    case Op::in_set:
      return std::any_of(values_.begin(), values_.end(),
                         [&](const Value& m) { return m.equals(v); });
    case Op::prefix:
      return v.is_string() && starts_with(v.as_string(), operand_.as_string());
    case Op::range: {
      auto lo = v.compare(operand_);
      auto hi = v.compare(hi_);
      return lo.has_value() && hi.has_value() && *lo >= 0 && *hi <= 0;
    }
  }
  return false;
}

std::optional<Constraint::Interval> Constraint::as_interval() const {
  switch (op_) {
    case Op::eq:
      return Interval{operand_, operand_, false, false};
    case Op::lt:
      return Interval{std::nullopt, operand_, false, true};
    case Op::le:
      return Interval{std::nullopt, operand_, false, false};
    case Op::gt:
      return Interval{operand_, std::nullopt, true, false};
    case Op::ge:
      return Interval{operand_, std::nullopt, false, false};
    case Op::range:
      return Interval{operand_, hi_, false, false};
    default:
      return std::nullopt;
  }
}

bool Constraint::interval_covers(const Interval& outer, const Constraint& inner) const {
  auto ii = inner.as_interval();
  if (!ii) return false;
  // Lower bound: outer.lo must be <= inner.lo (with strictness respected).
  if (outer.lo.has_value()) {
    if (!ii->lo.has_value()) return false;
    auto c = ii->lo->compare(*outer.lo);
    if (!c.has_value() || *c < 0) return false;
    if (*c == 0 && outer.lo_strict && !ii->lo_strict) return false;
  }
  // Upper bound: inner.hi must be <= outer.hi.
  if (outer.hi.has_value()) {
    if (!ii->hi.has_value()) return false;
    auto c = ii->hi->compare(*outer.hi);
    if (!c.has_value() || *c > 0) return false;
    if (*c == 0 && outer.hi_strict && !ii->hi_strict) return false;
  }
  return true;
}

bool Constraint::covers(const Constraint& other) const {
  if (op_ == Op::any) return true;
  if (other.op_ == Op::any) return false;

  // Inner constraints with an exactly enumerable witness set: covered iff
  // every witness matches the outer constraint. (eq v also accepts values
  // numerically equal to v, e.g. 5 vs 5.0 — all our ops decide such pairs
  // identically, so one witness suffices.)
  if (other.op_ == Op::eq) return matches(other.operand_);
  if (other.op_ == Op::in_set) {
    return !other.values_.empty() &&
           std::all_of(other.values_.begin(), other.values_.end(),
                       [&](const Value& m) { return matches(m); });
  }
  // Degenerate range [a,a] behaves like eq a.
  if (other.op_ == Op::range && other.operand_.equals(other.hi_)) {
    return matches(other.operand_);
  }

  switch (op_) {
    case Op::ne:
      // ne v covers `other` iff `other` never accepts v — and matches()
      // is exact, so ask it.
      return !other.matches(operand_);

    case Op::lt:
    case Op::le:
    case Op::gt:
    case Op::ge:
    case Op::range: {
      if (other.op_ == Op::prefix) {
        // Strings with prefix p span [p, next_prefix(p)).
        const std::string& p = other.operand_.as_string();
        const Value pv(p);
        auto np = next_prefix(p);
        switch (op_) {
          case Op::lt:
          case Op::le:
            return np.has_value() && operand_.is_string() &&
                   Value(*np).compare(operand_).value_or(1) <= 0;
          case Op::gt:
            return operand_.is_string() &&
                   pv.compare(operand_).value_or(-1) > 0;
          case Op::ge:
            return operand_.is_string() &&
                   pv.compare(operand_).value_or(-1) >= 0;
          case Op::range:
            return np.has_value() && operand_.is_string() && hi_.is_string() &&
                   pv.compare(operand_).value_or(-1) >= 0 &&
                   Value(*np).compare(hi_).value_or(1) <= 0;
          default:
            return false;
        }
      }
      auto oi = as_interval();
      REBECA_CHECK(oi.has_value());
      return interval_covers(*oi, other);
    }

    case Op::prefix: {
      const std::string& p = operand_.as_string();
      if (other.op_ == Op::prefix) return starts_with(other.operand_.as_string(), p);
      if (other.op_ == Op::range) {
        return other.operand_.is_string() && other.hi_.is_string() &&
               starts_with(other.operand_.as_string(), p) &&
               starts_with(other.hi_.as_string(), p);
      }
      return false;
    }

    case Op::eq:
    case Op::in_set:
      // Non-witness inners (intervals, prefixes, ne) accept sets larger
      // than any finite witness set.
      return false;

    case Op::any:
    default:
      return false;
  }
}

bool Constraint::overlaps(const Constraint& other) const {
  if (op_ == Op::any || other.op_ == Op::any) return true;

  // Witness-exact sides decide overlap exactly.
  if (op_ == Op::eq) return other.matches(operand_);
  if (other.op_ == Op::eq) return matches(other.operand_);
  if (op_ == Op::in_set) {
    return std::any_of(values_.begin(), values_.end(),
                       [&](const Value& m) { return other.matches(m); });
  }
  if (other.op_ == Op::in_set) {
    return std::any_of(other.values_.begin(), other.values_.end(),
                       [&](const Value& m) { return matches(m); });
  }

  // ne is disjoint only from constraints accepting exactly its excluded
  // value — all such inners are witness-exact and already handled.
  if (op_ == Op::ne || other.op_ == Op::ne) return true;

  // prefix vs prefix: disjoint unless nested.
  if (op_ == Op::prefix && other.op_ == Op::prefix) {
    return starts_with(operand_.as_string(), other.operand_.as_string()) ||
           starts_with(other.operand_.as_string(), operand_.as_string());
  }

  // prefix vs ordered: approximate the prefix as the interval
  // [p, next_prefix(p)) and fall through to interval intersection.
  auto interval_of = [](const Constraint& c) -> std::optional<Interval> {
    if (c.op_ == Op::prefix) {
      const std::string& p = c.operand_.as_string();
      auto np = next_prefix(p);
      Interval iv;
      iv.lo = Value(p);
      iv.lo_strict = false;
      if (np) {
        iv.hi = Value(*np);
        iv.hi_strict = true;
      }
      return iv;
    }
    return c.as_interval();
  };

  auto a = interval_of(*this);
  auto b = interval_of(other);
  if (a && b) {
    // Disjoint iff one interval ends before the other begins. Bounds of
    // incomparable types mean disjoint value domains.
    auto ends_before = [](const Interval& x, const Interval& y) {
      if (!x.hi.has_value() || !y.lo.has_value()) return false;
      auto c = x.hi->compare(*y.lo);
      if (!c.has_value()) return true;  // incomparable domains
      if (*c < 0) return true;
      if (*c == 0) return x.hi_strict || y.lo_strict;
      return false;
    };
    return !ends_before(*a, *b) && !ends_before(*b, *a);
  }
  return true;  // conservative
}

std::optional<Constraint> Constraint::try_merge(const Constraint& other) const {
  if (covers(other)) return *this;
  if (other.covers(*this)) return other;

  // Witness unions.
  auto witness_set = [](const Constraint& c) -> std::optional<std::set<Value>> {
    if (c.op_ == Op::eq) return std::set<Value>{c.operand_};
    if (c.op_ == Op::in_set) return c.values_;
    if (c.op_ == Op::range && c.operand_.equals(c.hi_))
      return std::set<Value>{c.operand_};
    return std::nullopt;
  };
  auto wa = witness_set(*this);
  auto wb = witness_set(other);
  if (wa && wb) {
    std::set<Value> merged = *wa;
    merged.insert(wb->begin(), wb->end());
    return Constraint::in_set(std::move(merged));
  }

  // Overlapping ranges merge to their hull (exact union when they
  // intersect; disjoint ranges are not mergeable into one range).
  if (op_ == Op::range && other.op_ == Op::range && overlaps(other)) {
    const Value& lo = operand_.compare(other.operand_).value_or(1) <= 0
                          ? operand_
                          : other.operand_;
    const Value& hi = hi_.compare(other.hi_).value_or(-1) >= 0 ? hi_ : other.hi_;
    return Constraint::range(lo, hi);
  }

  return std::nullopt;
}

bool operator<(const Constraint& a, const Constraint& b) {
  if (a.op_ != b.op_) return a.op_ < b.op_;
  if (!(a.operand_ == b.operand_)) return a.operand_ < b.operand_;
  if (!(a.hi_ == b.hi_)) return a.hi_ < b.hi_;
  return a.values_ < b.values_;
}

std::string Constraint::to_string() const {
  std::ostringstream os;
  switch (op_) {
    case Op::any:
      os << "*";
      break;
    case Op::in_set: {
      os << "in {";
      bool first = true;
      for (const auto& v : values_) {
        if (!first) os << ", ";
        os << v;
        first = false;
      }
      os << "}";
      break;
    }
    case Op::range:
      os << "in [" << operand_ << ", " << hi_ << "]";
      break;
    case Op::prefix:
      os << "prefix " << operand_;
      break;
    default:
      os << op_name(op_) << " " << operand_;
      break;
  }
  return os.str();
}

}  // namespace rebeca::filter
