// Interned attribute schema: the names notifications and filters speak.
//
// Every attribute name ("service", "cost", "location", …) is interned
// once into the process-wide AttrTable and referenced everywhere else by
// a dense 32-bit AttrId. The content model stores id-keyed sorted flat
// vectors instead of string-keyed maps, so the per-hop matching work —
// Filter::matches / covers / overlaps and the MatchIndex probe — runs on
// integer comparisons; strings appear only at the API boundary (the
// fluent set()/where() builders) and in diagnostics.
//
// Determinism: ids are minted in first-use order, which is fixed by the
// declaration/config text for any given run — but nothing *ordered* is
// allowed to depend on mint order anyway. Filter::operator< (the
// routing-table key order, hence the admin wire order) and every
// to_string iterate in attribute-*name* order, exactly the ordering the
// old std::map<std::string, …> storage induced, so equal-seed reports
// stay byte-identical no matter which thread interned a name first.
#ifndef REBECA_FILTER_ATTR_HPP
#define REBECA_FILTER_ATTR_HPP

#include <cstdint>
#include <deque>
#include <shared_mutex>
#include <string>
#include <string_view>
#include <unordered_map>

namespace rebeca::filter {

/// Dense interned attribute id. Default-constructed ids are invalid
/// ("no such attribute"); valid ids index the AttrTable.
class AttrId {
 public:
  constexpr AttrId() = default;
  explicit constexpr AttrId(std::uint32_t v) : value_(v) {}

  [[nodiscard]] constexpr std::uint32_t value() const { return value_; }
  [[nodiscard]] constexpr bool valid() const { return value_ != kInvalid; }

  friend constexpr auto operator<=>(AttrId, AttrId) = default;

 private:
  static constexpr std::uint32_t kInvalid = 0xFFFFFFFFu;
  std::uint32_t value_ = kInvalid;
};

/// Process-wide attribute interner. Thread-safe: scenario sweeps intern
/// from worker threads concurrently. Names live in a deque, so the
/// `const std::string*` handles handed out stay valid for the process
/// lifetime — holders (Filter terms) compare and print without locking.
class AttrTable {
 public:
  static AttrTable& global();

  /// Interns `name`, minting an id on first use.
  AttrId intern(std::string_view name);
  /// Interns and also returns the stable name storage.
  std::pair<AttrId, const std::string*> intern_ref(std::string_view name);
  /// Lookup without interning; invalid id when the name was never seen.
  [[nodiscard]] AttrId find(std::string_view name) const;
  /// Name of a minted id (stable storage, process lifetime).
  [[nodiscard]] const std::string& name(AttrId id) const;
  [[nodiscard]] const std::string* name_ptr(AttrId id) const;
  [[nodiscard]] std::size_t size() const;

 private:
  mutable std::shared_mutex mutex_;
  std::deque<std::string> names_;  // deque: push_back never moves elements
  // rebeca-lint: allow(DET-CONTAINER, lookup-only interner index; never iterated, so hash order is unobservable)
  std::unordered_map<std::string_view, AttrId> ids_;  // views into names_
};

/// Shorthands for the global table.
inline AttrId attr_of(std::string_view name) {
  return AttrTable::global().intern(name);
}
inline const std::string& attr_name(AttrId id) {
  return AttrTable::global().name(id);
}

}  // namespace rebeca::filter

#endif  // REBECA_FILTER_ATTR_HPP
