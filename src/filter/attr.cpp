#include "src/filter/attr.hpp"

#include <mutex>

#include "src/util/assert.hpp"

namespace rebeca::filter {

AttrTable& AttrTable::global() {
  static AttrTable table;
  return table;
}

AttrId AttrTable::intern(std::string_view name) {
  return intern_ref(name).first;
}

std::pair<AttrId, const std::string*> AttrTable::intern_ref(
    std::string_view name) {
  {
    std::shared_lock lock(mutex_);
    auto it = ids_.find(name);
    if (it != ids_.end()) return {it->second, &names_[it->second.value()]};
  }
  std::unique_lock lock(mutex_);
  auto it = ids_.find(name);  // lost the race to another interner?
  if (it != ids_.end()) return {it->second, &names_[it->second.value()]};
  const AttrId id(static_cast<std::uint32_t>(names_.size()));
  names_.emplace_back(name);
  ids_.emplace(std::string_view(names_.back()), id);
  return {id, &names_.back()};
}

AttrId AttrTable::find(std::string_view name) const {
  std::shared_lock lock(mutex_);
  auto it = ids_.find(name);
  return it == ids_.end() ? AttrId{} : it->second;
}

const std::string& AttrTable::name(AttrId id) const {
  const std::string* p = name_ptr(id);
  REBECA_ASSERT(p != nullptr, "unknown attr id " << id.value());
  return *p;
}

const std::string* AttrTable::name_ptr(AttrId id) const {
  std::shared_lock lock(mutex_);
  if (!id.valid() || id.value() >= names_.size()) return nullptr;
  return &names_[id.value()];
}

std::size_t AttrTable::size() const {
  std::shared_lock lock(mutex_);
  return names_.size();
}

}  // namespace rebeca::filter
