// Process-level runtime: one broker (or a bundle of clients) per OS
// process, wired over the TCP session layer.
//
// The design keeps every entity (Broker, Client, their Links) 100%
// unmodified: each remote peer appears locally as a SessionPort — a
// net::Endpoint proxy joined to the entity by an ordinary classic Link
// with zero delay on a RealtimeExecutor. Outgoing messages flow
// entity → Link → SessionPort → wire codec → socket; the socket's
// reader thread posts incoming frames onto the executor, which decodes
// and injects them through the same Link. All entity code runs
// single-threaded on the executor; sockets are the only concurrency.
//
// Deployment shape (one host, loopback, v1):
//
//   rebeca-node --config cfg.json --broker 0     # one broker process
//   rebeca-node --config cfg.json --broker 1 ...
//   rebeca-node --config cfg.json --clients      # all clients, one process
//
// Broker i listens on transport.port_base + i, or — when port_base is
// 0 — on an ephemeral port announced through a rendezvous directory
// (broker_<i>.port files, written atomically). For tree edge (a, b)
// with a < b, b dials a. A broker defers client admission until every
// neighbor-broker session is up, because attach_broker_link does not
// re-forward existing subscriptions: admin traffic must never race the
// peer wiring.
//
// Mobility: a client's moveto() is a real socket teardown. The bundle
// cuts the local link (Client behaves exactly as under the simulated
// PhysicalMover), closes the socket (the old broker sees EOF and
// virtualizes the session — same path as a simulated link cut), waits
// out the gap, then dials the next broker with the SAME session id and
// a bumped attempt counter. Client::attach re-issues subscriptions
// with (epoch, last_seq) and the existing RelocateSub/Fetch/Replay
// machinery recovers the gap losslessly.
#ifndef REBECA_TRANSPORT_NODE_HPP
#define REBECA_TRANSPORT_NODE_HPP

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "src/broker/broker.hpp"
#include "src/client/client.hpp"
#include "src/net/link.hpp"
#include "src/net/topology.hpp"
#include "src/transport/realtime.hpp"
#include "src/transport/session.hpp"

namespace rebeca::transport {

// ---------------------------------------------------------------------------
// Deployment description (built by cli/node_config from the JSON file)
// ---------------------------------------------------------------------------

struct TransportOpts {
  std::string host = "127.0.0.1";
  /// Broker i listens on port_base + i; 0 = ephemeral ports announced
  /// via the rendezvous directory.
  std::uint16_t port_base = 0;
  std::string rendezvous_dir;
  /// Wall seconds per virtual second (see RealtimeExecutor).
  double time_scale = 1.0;
};

/// One periodic publisher, with phase offsets already resolved to
/// absolute virtual times.
struct PublishDrive {
  filter::Notification body;
  sim::Duration every = 0;    // fixed period; 0 = poisson
  sim::Duration poisson = 0;  // mean inter-arrival; 0 = every
  std::uint64_t count = 0;    // 0 = unbounded
  std::uint64_t seed = 1;
  sim::TimePoint start = 0;
  sim::TimePoint stop = 0;  // 0 = run to the end
};

/// A scripted physical roam: dwell at the current broker, go dark for
/// `gap`, re-attach at the next stop.
struct RoamDrive {
  std::vector<std::size_t> route;  // brokers visited after the start one
  sim::Duration dwell = sim::seconds(5);
  sim::Duration gap = sim::seconds(1);
  std::uint64_t hops = 0;  // 0 = whole route once
  sim::TimePoint start = 0;
};

struct NodeClientSpec {
  std::string name;
  std::uint32_t id = 0;
  std::size_t broker = 0;  // initial attach point
  std::vector<filter::Filter> subscribes;
  std::vector<PublishDrive> publishes;
  std::vector<RoamDrive> roams;
};

/// Everything a rebeca-node process needs, parsed once from the config.
struct NodeSpec {
  std::string name;
  std::optional<net::Topology> topology;
  broker::BrokerConfig broker;
  std::vector<NodeClientSpec> clients;
  /// Sum of the config's phases: when the client bundle stops.
  sim::Duration total_duration = sim::seconds(5);
  TransportOpts transport;
};

// ---------------------------------------------------------------------------
// Building blocks
// ---------------------------------------------------------------------------

/// Local stand-in for a remote peer: terminates the entity's Link and
/// forwards across the socket. Incoming frames are injected by the node
/// runtime via Link::send(*port, msg).
class SessionPort final : public net::Endpoint {
 public:
  explicit SessionPort(std::string name) : name_(std::move(name)) {}

  void set_session(PeerSession* session) { session_ = session; }
  [[nodiscard]] PeerSession* session() const { return session_; }

  void handle_message(net::Link& from, const net::Message& msg) override;
  void handle_link_down(net::Link& link) override { (void)link; }
  [[nodiscard]] std::string endpoint_name() const override { return name_; }

 private:
  std::string name_;
  PeerSession* session_ = nullptr;
};

/// Maps broker index → (host, port). With port_base the mapping is
/// arithmetic; with a rendezvous directory it polls broker_<i>.port
/// files (written atomically by each broker on bind).
class AddressBook {
 public:
  explicit AddressBook(TransportOpts opts) : opts_(std::move(opts)) {}

  [[nodiscard]] const std::string& host() const { return opts_.host; }

  /// Publishes a broker's bound port (rendezvous mode only; no-op with
  /// port_base).
  void announce(std::size_t broker, std::uint16_t port) const;

  /// Resolves a broker's port, polling the rendezvous file until the
  /// wall deadline. 0 on timeout. Blocking — call off the executor.
  [[nodiscard]] std::uint16_t wait_port(std::size_t broker,
                                        std::chrono::milliseconds timeout) const;

 private:
  TransportOpts opts_;
};

// ---------------------------------------------------------------------------
// Broker process
// ---------------------------------------------------------------------------

class BrokerNode {
 public:
  BrokerNode(const NodeSpec& spec, std::size_t index);
  ~BrokerNode();

  /// Binds, connects to lower-index neighbors, serves until stop().
  void run();
  /// Thread-safe (callable from a signal-watcher thread).
  void stop();

  [[nodiscard]] std::uint16_t port() const;
  [[nodiscard]] const broker::Broker& broker() const { return broker_; }

 private:
  /// One neighbor broker: link + proxy exist from construction (the
  /// broker is attached immediately); the session arrives when the
  /// socket connects.
  struct PeerSlot {
    std::size_t neighbor = 0;
    std::unique_ptr<SessionPort> port;
    std::unique_ptr<net::Link> link;
    std::unique_ptr<PeerSession> session;
  };

  /// One connected client socket, keyed by a local admission counter
  /// (session ids repeat across reconnects by design).
  struct ClientConn {
    std::uint64_t session_id = 0;
    std::unique_ptr<SessionPort> port;
    std::unique_ptr<net::Link> link;
    std::unique_ptr<PeerSession> session;
  };

  void on_hello(Conn conn, const SessionHello& hello);
  void bind_peer(std::size_t neighbor, Conn conn, std::uint64_t echo_session);
  void admit_client(Conn conn, const SessionHello& hello);
  void client_gone(std::uint64_t conn_id);
  [[nodiscard]] PeerSlot* slot_of(std::size_t neighbor);

  const std::size_t index_;
  const TransportOpts opts_;
  AddressBook addresses_;
  RealtimeExecutor exec_;
  broker::Broker broker_;
  std::optional<Acceptor> acceptor_;
  std::vector<PeerSlot> peers_;
  std::size_t peers_connected_ = 0;
  bool peers_ready_ = false;
  /// Client conns held back until all broker peers are up (their
  /// WELCOME is withheld, so the client has not sent anything yet).
  std::vector<std::pair<Conn, SessionHello>> waiting_clients_;
  std::map<std::uint64_t, ClientConn> clients_;
  /// Links/ports of departed clients. The Broker keeps raw Link*
  /// registrations forever (the simulators never destroy links either),
  /// so a dead client's link and proxy endpoint must outlive it; only
  /// the socket session is reclaimed.
  std::vector<ClientConn> retired_;
  std::uint64_t next_conn_id_ = 1;
  std::uint32_t next_link_id_ = 1;
  std::vector<std::thread> dialers_;
};

// ---------------------------------------------------------------------------
// Client-bundle process
// ---------------------------------------------------------------------------

/// Runs every client of the config in one process: their subscriptions,
/// publish drives and roams, against remote broker processes. On finish
/// it can check delivery completeness: every logged publication that
/// matches a client's subscription must have been delivered (the
/// --expect-complete smoke criterion; exactly-once is the client
/// library's dedup).
class ClientBundle {
 public:
  explicit ClientBundle(const NodeSpec& spec);
  ~ClientBundle();

  /// Runs the bundle to the end of the phase schedule. Returns the
  /// process exit code: 0, or 1 when expect_complete() found losses.
  int run();
  void stop();

  void set_expect_complete(bool v) { expect_complete_ = v; }

 private:
  struct BundleClient {
    NodeClientSpec spec;
    std::unique_ptr<client::Client> entity;
    std::uint64_t session_id = 0;
    std::uint32_t attempt = 0;
    std::size_t at_broker = 0;
    bool ever_attached = false;
    std::unique_ptr<SessionPort> port;
    std::unique_ptr<net::Link> link;
    std::unique_ptr<PeerSession> session;
    /// subscribe() handles, parallel to spec.subscribes.
    std::vector<std::uint32_t> sub_ids;
    /// One RNG per publish drive (inter-arrival draws).
    std::vector<util::Rng> pub_rngs;
    /// Links/ports of past attachments (see BrokerNode::retired_).
    std::vector<std::unique_ptr<SessionPort>> old_ports;
    std::vector<std::unique_ptr<net::Link>> old_links;
  };

  void start_client(std::size_t ci);
  void connect_client(std::size_t ci, std::size_t broker_index);
  void attach_with(std::size_t ci, Conn conn);
  void disconnect_client(std::size_t ci);
  void publish_tick(std::size_t ci, std::size_t di, std::uint64_t remaining);
  void schedule_roams(std::size_t ci);
  void roam_hop(std::size_t ci, std::size_t ri, std::size_t stop_index,
                std::uint64_t hops_left);
  [[nodiscard]] int check_completeness();

  const NodeSpec spec_;
  AddressBook addresses_;
  RealtimeExecutor exec_;
  std::vector<BundleClient> clients_;
  /// Every publication from every bundle client, in publish order.
  std::vector<filter::Notification> published_;
  bool expect_complete_ = false;
  std::uint32_t next_link_id_ = 1;
  /// Dial threads are spawned from the executor thread (which is also
  /// the thread inside run()) — never concurrently — and joined after
  /// the loop exits.
  std::vector<std::thread> dialers_;
};

}  // namespace rebeca::transport

#endif  // REBECA_TRANSPORT_NODE_HPP
