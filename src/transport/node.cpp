#include "src/transport/node.hpp"

#include <cstdio>
#include <fstream>
#include <iostream>
#include <set>
#include <sstream>
#include <utility>

#include "src/transport/wire.hpp"
#include "src/util/assert.hpp"

namespace rebeca::transport {

namespace {

constexpr std::chrono::milliseconds kDialTimeout(30000);

/// Stable per-client session id (the client mints it once; every
/// reconnect presents it again).
std::uint64_t session_id_of(std::uint32_t client) {
  return (0x5E55ull << 32) | client;
}

/// Decode a frame payload and inject it into the local link as if the
/// remote endpoint had sent it. Malformed frames are dropped loudly: a
/// wire error is a peer bug, not a reason to kill the process.
void inject(net::Link& link, SessionPort& port, const std::string& bytes) {
  try {
    link.send(port, decode_message(bytes));
  } catch (const WireError& e) {
    std::cerr << "[transport] dropping malformed frame: " << e.what() << "\n";
  }
}

}  // namespace

// ---------------------------------------------------------------------------
// SessionPort
// ---------------------------------------------------------------------------

void SessionPort::handle_message(net::Link& from, const net::Message& msg) {
  (void)from;
  // Entity → socket. A null session means the peer is not connected
  // (yet, or anymore): the frame is dropped exactly like a message on a
  // cut simulated link.
  if (session_ != nullptr) session_->send_message(msg);
}

// ---------------------------------------------------------------------------
// AddressBook
// ---------------------------------------------------------------------------

void AddressBook::announce(std::size_t broker, std::uint16_t port) const {
  if (opts_.port_base != 0 || opts_.rendezvous_dir.empty()) return;
  const std::string path =
      opts_.rendezvous_dir + "/broker_" + std::to_string(broker) + ".port";
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::trunc);
    out << port << "\n";
  }
  // Atomic publish: dialers either see the complete file or none.
  std::rename(tmp.c_str(), path.c_str());
}

std::uint16_t AddressBook::wait_port(std::size_t broker,
                                     std::chrono::milliseconds timeout) const {
  if (opts_.port_base != 0) {
    return static_cast<std::uint16_t>(opts_.port_base + broker);
  }
  REBECA_ASSERT(!opts_.rendezvous_dir.empty(),
                "transport needs port_base or a rendezvous dir");
  const std::string path =
      opts_.rendezvous_dir + "/broker_" + std::to_string(broker) + ".port";
  const auto deadline = std::chrono::steady_clock::now() + timeout;
  for (;;) {
    std::ifstream in(path);
    int port = 0;
    if (in >> port && port > 0 && port <= 65535) {
      return static_cast<std::uint16_t>(port);
    }
    if (std::chrono::steady_clock::now() >= deadline) return 0;
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
}

// ---------------------------------------------------------------------------
// BrokerNode
// ---------------------------------------------------------------------------

BrokerNode::BrokerNode(const NodeSpec& spec, std::size_t index)
    : index_(index), opts_(spec.transport), addresses_(opts_),
      exec_(/*seed=*/index + 1, opts_.time_scale),
      broker_(exec_, NodeId(static_cast<std::uint32_t>(index)), spec.broker) {
  REBECA_ASSERT(spec.topology.has_value(), "broker node needs a topology");
  REBECA_ASSERT(index < spec.topology->broker_count(),
                "broker index " << index << " out of range");

  // One slot per neighbor: link + proxy exist before any traffic, so the
  // broker's view of its overlay wiring is complete from the start.
  for (std::size_t neighbor : spec.topology->neighbors(index)) {
    PeerSlot slot;
    slot.neighbor = neighbor;
    slot.port = std::make_unique<SessionPort>(
        "peer-broker" + std::to_string(neighbor));
    slot.link = std::make_unique<net::Link>(
        LinkId(next_link_id_++), exec_, broker_, *slot.port,
        sim::DelayModel::fixed(0));
    broker_.attach_broker_link(*slot.link);
    peers_.push_back(std::move(slot));
  }
  peers_ready_ = peers_.empty();

  const std::uint16_t listen_port =
      opts_.port_base != 0
          ? static_cast<std::uint16_t>(opts_.port_base + index)
          : 0;
  acceptor_.emplace(exec_, opts_.host, listen_port,
                    [this](Conn conn, SessionHello hello) {
                      on_hello(std::move(conn), hello);
                    });
  addresses_.announce(index_, acceptor_->port());
}

BrokerNode::~BrokerNode() {
  stop();
  for (std::thread& t : dialers_) {
    if (t.joinable()) t.join();
  }
  if (acceptor_) acceptor_->close();
}

std::uint16_t BrokerNode::port() const { return acceptor_->port(); }

void BrokerNode::stop() { exec_.stop(); }

BrokerNode::PeerSlot* BrokerNode::slot_of(std::size_t neighbor) {
  for (PeerSlot& slot : peers_) {
    if (slot.neighbor == neighbor) return &slot;
  }
  return nullptr;
}

void BrokerNode::run() {
  // Tree edge (a, b), a < b: b dials a. Each dial runs on its own
  // thread (the peer may not have bound yet); success posts the conn
  // back onto the executor.
  for (const PeerSlot& slot : peers_) {
    if (slot.neighbor >= index_) continue;
    const std::size_t neighbor = slot.neighbor;
    dialers_.emplace_back([this, neighbor] {
      const std::uint16_t port = addresses_.wait_port(neighbor, kDialTimeout);
      if (port == 0) {
        std::cerr << "[broker" << index_ << "] no address for broker"
                  << neighbor << "\n";
        exec_.stop();
        return;
      }
      SessionHello hello;
      hello.kind = SessionHello::Kind::broker;
      hello.node = static_cast<std::uint32_t>(index_);
      auto dialed = dial(addresses_.host(), port, hello, kDialTimeout);
      if (!dialed) {
        std::cerr << "[broker" << index_ << "] cannot reach broker"
                  << neighbor << "\n";
        exec_.stop();
        return;
      }
      // rebeca-lint: allow(LANE-ESCAPE, posts onto this node's own executor; the node outlives exec_.run() so `this` is valid for every drained event)
      exec_.post([this, neighbor, conn = std::move(dialed->first)]() mutable {
        bind_peer(neighbor, std::move(conn), /*echo_session=*/0);
      });
    });
  }
  exec_.run();
}

void BrokerNode::on_hello(Conn conn, const SessionHello& hello) {
  if (hello.kind == SessionHello::Kind::broker) {
    bind_peer(hello.node, std::move(conn), hello.session);
    return;
  }
  if (!peers_ready_) {
    // Withhold the WELCOME until the broker overlay is wired: the
    // client blocks in dial() and sends nothing in the meantime, so no
    // admin traffic can race the peer links.
    waiting_clients_.emplace_back(std::move(conn), hello);
    return;
  }
  admit_client(std::move(conn), hello);
}

void BrokerNode::bind_peer(std::size_t neighbor, Conn conn,
                           std::uint64_t echo_session) {
  PeerSlot* slot = slot_of(neighbor);
  if (slot == nullptr) {
    std::cerr << "[broker" << index_ << "] hello from non-neighbor broker"
              << neighbor << "\n";
    return;
  }
  const bool already_connected = slot->session != nullptr;
  SessionPort* port = slot->port.get();
  net::Link* link = slot->link.get();
  auto session = std::make_unique<PeerSession>(
      exec_, std::move(conn),
      [link, port](std::string bytes) { inject(*link, *port, bytes); },
      [this, neighbor] {
        // A broker peer dying mid-run is unrecoverable in v1 (no
        // broker-broker resume yet): report and keep serving what we
        // can. Follow-up: WAN reconnect with admin-state resync.
        std::cerr << "[broker" << index_ << "] lost broker" << neighbor
                  << "\n";
        if (PeerSlot* s = slot_of(neighbor)) s->port->set_session(nullptr);
      });
  // Accept side replies WELCOME (the dialer is blocked waiting on it).
  if (neighbor > index_) {
    session->send_frame(
        kFrameWelcome,
        encode_welcome(SessionWelcome{
            echo_session, static_cast<std::uint32_t>(index_)}));
  }
  slot->session = std::move(session);
  port->set_session(slot->session.get());

  if (!already_connected && ++peers_connected_ == peers_.size()) {
    peers_ready_ = true;
    for (auto& [waiting_conn, waiting_hello] : waiting_clients_) {
      admit_client(std::move(waiting_conn), waiting_hello);
    }
    waiting_clients_.clear();
  }
}

void BrokerNode::admit_client(Conn conn, const SessionHello& hello) {
  const std::uint64_t conn_id = next_conn_id_++;
  ClientConn cc;
  cc.session_id = hello.session;
  cc.port = std::make_unique<SessionPort>(
      "client" + std::to_string(hello.client) + "/s" +
      std::to_string(hello.session) + "." + std::to_string(hello.attempt));
  cc.link = std::make_unique<net::Link>(LinkId(next_link_id_++), exec_,
                                        broker_, *cc.port,
                                        sim::DelayModel::fixed(0));
  broker_.attach_client_link(*cc.link);
  SessionPort* port = cc.port.get();
  net::Link* link = cc.link.get();
  cc.session = std::make_unique<PeerSession>(
      exec_, std::move(conn),
      [link, port](std::string bytes) { inject(*link, *port, bytes); },
      [this, conn_id] { client_gone(conn_id); });
  // The WELCOME releases the client: it will now send its hello message
  // (with resubscriptions when roaming) through the fully wired broker.
  cc.session->send_frame(
      kFrameWelcome,
      encode_welcome(
          SessionWelcome{hello.session, static_cast<std::uint32_t>(index_)}));
  port->set_session(cc.session.get());
  clients_.emplace(conn_id, std::move(cc));
}

void BrokerNode::client_gone(std::uint64_t conn_id) {
  auto it = clients_.find(conn_id);
  if (it == clients_.end()) return;
  ClientConn& cc = it->second;
  cc.port->set_session(nullptr);
  // Socket EOF == radio silence: cutting the link runs the exact
  // virtualization path a simulated silent detach runs (the broker
  // starts buffering into the virtual counterpart).
  cc.link->cut(*cc.port);
  // Deferred reclamation: the session object may still have events in
  // flight this turn. Link and port must outlive the broker's Link*
  // registration, so they retire instead of dying.
  // rebeca-lint: allow(LANE-ESCAPE, posts onto this node's own executor; the node outlives exec_.run() so `this` is valid for every drained event)
  exec_.post([this, conn_id] {
    auto node = clients_.extract(conn_id);
    if (node.empty()) return;
    node.mapped().session.reset();
    retired_.push_back(std::move(node.mapped()));
  });
}

// ---------------------------------------------------------------------------
// ClientBundle
// ---------------------------------------------------------------------------

ClientBundle::ClientBundle(const NodeSpec& spec)
    : spec_(spec), addresses_(spec.transport),
      exec_(/*seed=*/0x5EED, spec.transport.time_scale) {
  for (const NodeClientSpec& cs : spec_.clients) {
    BundleClient bc;
    bc.spec = cs;
    bc.session_id = session_id_of(cs.id);
    bc.at_broker = cs.broker;
    client::ClientConfig cfg;
    cfg.id = ClientId(cs.id);
    bc.entity = std::make_unique<client::Client>(exec_, cfg);
    bc.entity->on_publish = [this](const filter::Notification& n) {
      published_.push_back(n);
    };
    // Subscribe while disconnected: the first attach's hello carries
    // the subscriptions, mirroring the simulated scenario start.
    for (const filter::Filter& f : cs.subscribes) {
      bc.sub_ids.push_back(bc.entity->subscribe(f));
    }
    for (const PublishDrive& pd : cs.publishes) {
      bc.pub_rngs.emplace_back(pd.seed);
    }
    clients_.push_back(std::move(bc));
  }
}

ClientBundle::~ClientBundle() {
  stop();
  for (std::thread& t : dialers_) {
    if (t.joinable()) t.join();
  }
}

void ClientBundle::stop() { exec_.stop(); }

int ClientBundle::run() {
  for (std::size_t ci = 0; ci < clients_.size(); ++ci) start_client(ci);
  exec_.schedule_at(spec_.total_duration, [this] { exec_.stop(); });
  exec_.run();
  for (std::thread& t : dialers_) {
    if (t.joinable()) t.join();
  }
  dialers_.clear();
  for (BundleClient& bc : clients_) {
    if (bc.session) {
      bc.port->set_session(nullptr);
      bc.session->close();
    }
  }
  return check_completeness();
}

void ClientBundle::start_client(std::size_t ci) {
  BundleClient& bc = clients_[ci];
  for (std::size_t di = 0; di < bc.spec.publishes.size(); ++di) {
    const PublishDrive& pd = bc.spec.publishes[di];
    exec_.schedule_at(pd.start, [this, ci, di] {
      publish_tick(ci, di, clients_[ci].spec.publishes[di].count);
    });
  }
  schedule_roams(ci);
  connect_client(ci, bc.spec.broker);
}

void ClientBundle::connect_client(std::size_t ci, std::size_t broker_index) {
  BundleClient& bc = clients_[ci];
  SessionHello hello;
  hello.kind = SessionHello::Kind::client;
  hello.client = bc.spec.id;
  hello.session = bc.session_id;
  hello.attempt = bc.attempt;
  dialers_.emplace_back([this, ci, broker_index, hello] {
    const std::uint16_t port =
        addresses_.wait_port(broker_index, kDialTimeout);
    if (port == 0) {
      std::cerr << "[clients] no address for broker" << broker_index << "\n";
      exec_.stop();
      return;
    }
    auto dialed = dial(addresses_.host(), port, hello, kDialTimeout);
    if (!dialed) {
      std::cerr << "[clients] cannot reach broker" << broker_index << "\n";
      exec_.stop();
      return;
    }
    // rebeca-lint: allow(LANE-ESCAPE, posts onto this node's own executor; the node outlives exec_.run() so `this` is valid for every drained event)
    exec_.post([this, ci, conn = std::move(dialed->first)]() mutable {
      attach_with(ci, std::move(conn));
    });
  });
}

void ClientBundle::attach_with(std::size_t ci, Conn conn) {
  BundleClient& bc = clients_[ci];
  auto port = std::make_unique<SessionPort>(
      "broker" + std::to_string(bc.at_broker) + "@" +
      std::to_string(bc.attempt));
  auto link = std::make_unique<net::Link>(LinkId(next_link_id_++), exec_,
                                          *bc.entity, *port,
                                          sim::DelayModel::fixed(0));
  SessionPort* port_raw = port.get();
  net::Link* link_raw = link.get();
  bc.session = std::make_unique<PeerSession>(
      exec_, std::move(conn),
      [link_raw, port_raw](std::string bytes) {
        inject(*link_raw, *port_raw, bytes);
      },
      [this, ci] {
        // Broker vanished under us. Cut locally so the client notices;
        // a scheduled roam (or the end of the run) takes it from here.
        BundleClient& c = clients_[ci];
        std::cerr << "[clients] lost broker" << c.at_broker << " for "
                  << c.spec.name << "\n";
        if (c.port) c.port->set_session(nullptr);
        if (c.entity->connected()) c.entity->detach_silently();
      });
  port->set_session(bc.session.get());
  if (bc.port) bc.old_ports.push_back(std::move(bc.port));
  if (bc.link) bc.old_links.push_back(std::move(bc.link));
  bc.port = std::move(port);
  bc.link = std::move(link);
  bc.ever_attached = true;
  // attach() sends the hello: fresh subs install plainly; on a roam
  // reconnect the (epoch, last_seq) pairs arm the fetch/replay
  // recovery at the new border broker.
  bc.entity->attach(*bc.link);
}

void ClientBundle::disconnect_client(std::size_t ci) {
  BundleClient& bc = clients_[ci];
  // Order matters and mirrors a silent radio loss: the client-side link
  // dies first (in-flight deliveries are lost), then the socket EOF
  // tells the old broker, which virtualizes the session and buffers.
  if (bc.entity->connected()) bc.entity->detach_silently();
  if (bc.port) bc.port->set_session(nullptr);
  if (bc.session) {
    bc.session->close();
    bc.session.reset();
  }
}

void ClientBundle::publish_tick(std::size_t ci, std::size_t di,
                                std::uint64_t remaining) {
  BundleClient& bc = clients_[ci];
  const PublishDrive& pd = bc.spec.publishes[di];
  if (pd.stop != 0 && exec_.now() >= pd.stop) return;
  // Publish even while detached: the client library queues the
  // notification and flushes it on the next attach (pub/sub adherence —
  // a roaming producer keeps producing).
  bc.entity->publish(pd.body);
  if (pd.count != 0 && --remaining == 0) return;
  const sim::Duration gap =
      pd.every != 0
          ? pd.every
          : static_cast<sim::Duration>(
                bc.pub_rngs[di].exponential(static_cast<double>(pd.poisson)));
  exec_.schedule_after(gap, [this, ci, di, remaining] {
    publish_tick(ci, di, remaining);
  });
}

void ClientBundle::schedule_roams(std::size_t ci) {
  BundleClient& bc = clients_[ci];
  for (std::size_t ri = 0; ri < bc.spec.roams.size(); ++ri) {
    const RoamDrive& rd = bc.spec.roams[ri];
    if (rd.route.empty()) continue;
    const std::uint64_t hops =
        rd.hops != 0 ? rd.hops : static_cast<std::uint64_t>(rd.route.size());
    exec_.schedule_at(rd.start + rd.dwell, [this, ci, ri, hops] {
      roam_hop(ci, ri, 0, hops);
    });
  }
}

void ClientBundle::roam_hop(std::size_t ci, std::size_t ri,
                            std::size_t stop_index, std::uint64_t hops_left) {
  if (hops_left == 0) return;
  BundleClient& bc = clients_[ci];
  const RoamDrive& rd = bc.spec.roams[ri];
  const std::size_t target = rd.route[stop_index % rd.route.size()];
  disconnect_client(ci);
  // Dark for `gap`, then re-attach at the target broker: same session
  // id, bumped attempt — the session survives the address change.
  exec_.schedule_after(rd.gap, [this, ci, target] {
    BundleClient& c = clients_[ci];
    ++c.attempt;
    c.at_broker = target;
    connect_client(ci, target);
  });
  exec_.schedule_after(rd.gap + rd.dwell,
                       [this, ci, ri, stop_index, hops_left] {
                         roam_hop(ci, ri, stop_index + 1, hops_left - 1);
                       });
}

int ClientBundle::check_completeness() {
  bool lossless = true;
  std::uint64_t total_expected = 0;
  std::uint64_t total_missing = 0;
  for (BundleClient& bc : clients_) {
    // Delivered notification ids per subscription handle.
    std::map<std::uint32_t, std::set<NotificationId>> got;
    for (const client::Delivery& d : bc.entity->deliveries()) {
      got[d.sub].insert(d.notification.id());
    }
    for (std::size_t si = 0; si < bc.spec.subscribes.size(); ++si) {
      const filter::Filter& f = bc.spec.subscribes[si];
      const std::uint32_t sub = bc.sub_ids[si];
      std::uint64_t expected = 0;
      std::uint64_t missing = 0;
      for (const filter::Notification& n : published_) {
        if (!f.matches(n)) continue;
        ++expected;
        if (got[sub].count(n.id()) == 0) ++missing;
      }
      total_expected += expected;
      total_missing += missing;
      if (missing != 0) lossless = false;
      std::cout << "client " << bc.spec.name << " sub " << sub
                << ": expected " << expected << " delivered "
                << (expected - missing) << " missing " << missing
                << " duplicates " << bc.entity->duplicate_count() << "\n";
    }
  }
  std::cout << "bundle: " << published_.size() << " publications, "
            << total_expected << " expected deliveries, " << total_missing
            << " missing" << (lossless ? " (complete)" : " (LOSSY)") << "\n";
  if (expect_complete_ && !lossless) return 1;
  return 0;
}

}  // namespace rebeca::transport
