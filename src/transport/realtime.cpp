#include "src/transport/realtime.hpp"

#include <algorithm>
#include <cmath>
#include <utility>

#include "src/sim/lane_check.hpp"
#include "src/util/assert.hpp"

namespace rebeca::transport {

RealtimeExecutor::RealtimeExecutor(std::uint64_t seed, double time_scale)
    : time_scale_(time_scale), start_(WallClock::now()), rng_(seed) {
  REBECA_ASSERT(time_scale > 0.0, "time_scale must be positive, got "
                                      << time_scale);
}

RealtimeExecutor::~RealtimeExecutor() { stop(); }

sim::TimePoint RealtimeExecutor::now() const {
  const auto wall =
      std::chrono::duration_cast<std::chrono::nanoseconds>(WallClock::now() -
                                                           start_)
          .count();
  return static_cast<sim::TimePoint>(
      std::llround(static_cast<double>(wall) / time_scale_));
}

RealtimeExecutor::WallClock::time_point RealtimeExecutor::wall_of(
    sim::TimePoint when) const {
  return start_ + std::chrono::nanoseconds(std::llround(
                      static_cast<double>(when) * time_scale_));
}

void RealtimeExecutor::enqueue(sim::TimePoint when, sim::EventFn fn,
                               std::shared_ptr<bool> cancelled) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    heap_.push_back(Scheduled{when, next_seq_++, std::move(fn),
                              std::move(cancelled)});
    std::push_heap(heap_.begin(), heap_.end(), Later{});
  }
  cv_.notify_one();
}

sim::EventHandle RealtimeExecutor::schedule_at(sim::TimePoint when,
                                               sim::EventFn fn) {
  auto flag = std::make_shared<bool>(false);
  enqueue(when, std::move(fn), flag);
  return make_handle(std::move(flag));
}

void RealtimeExecutor::post_at(sim::TimePoint when, sim::EventFn fn) {
  enqueue(when, std::move(fn), nullptr);
}

void RealtimeExecutor::post(sim::EventFn fn) {
  // `when = now()` keeps heap order sane; run() fires anything due.
  enqueue(now(), std::move(fn), nullptr);
}

void RealtimeExecutor::run() {
  std::unique_lock<std::mutex> lock(mutex_);
  while (!stop_) {
    if (heap_.empty()) {
      cv_.wait(lock, [this] { return stop_ || !heap_.empty(); });
      continue;
    }
    const auto deadline = wall_of(heap_.front().when);
    if (WallClock::now() < deadline) {
      // Sleep until due or until a new (possibly earlier) event or a
      // stop() wakes us — then re-evaluate from the top.
      cv_.wait_until(lock, deadline);
      continue;
    }
    std::pop_heap(heap_.begin(), heap_.end(), Later{});
    Scheduled ev = std::move(heap_.back());
    heap_.pop_back();
    if (ev.cancelled && *ev.cancelled) continue;
    lock.unlock();
    {
      sim::lane_check::ExecutingLane mark(this);
      ev.fn();
    }
    lock.lock();
  }
}

void RealtimeExecutor::stop() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  cv_.notify_all();
}

bool RealtimeExecutor::stopped() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stop_;
}

}  // namespace rebeca::transport
