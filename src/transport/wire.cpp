#include "src/transport/wire.hpp"

#include <algorithm>
#include <bit>
#include <cstring>
#include <vector>

#include "src/filter/attr.hpp"

namespace rebeca::transport {

namespace {

/// Frozen message tags. Append only — never renumber: these are the wire
/// contract between independently built/restarted processes.
enum : std::uint8_t {
  kTagPublish = 1,
  kTagDeliver = 2,
  kTagSubscribe = 3,
  kTagUnsubscribe = 4,
  kTagAdvertise = 5,
  kTagUnadvertise = 6,
  kTagRelocateSub = 7,
  kTagFetch = 8,
  kTagReExpose = 9,
  kTagReExposeAck = 10,
  kTagReplay = 11,
  kTagLdSubscribe = 12,
  kTagLdUnsubscribe = 13,
  kTagLdMove = 14,
  kTagClientHello = 15,
  kTagClientBye = 16,
  kTagClientSubscribe = 17,
  kTagClientUnsubscribe = 18,
  kTagClientPublish = 19,
  kTagClientAdvertise = 20,
  kTagClientUnadvertise = 21,
  kTagClientMove = 22,
};

enum : std::uint8_t {
  kValInt = 0,
  kValDouble = 1,
  kValString = 2,
  kValBool = 3,
};

/// Guard against absurd counts from a corrupt or hostile peer: a count
/// prefix may never claim more elements than bytes remaining.
void check_count(const WireReader& r, std::uint32_t count,
                 std::size_t min_elem_bytes, const char* what) {
  if (min_elem_bytes * static_cast<std::size_t>(count) > r.remaining()) {
    throw WireError(std::string("wire: ") + what + " count " +
                    std::to_string(count) + " exceeds remaining payload");
  }
}

}  // namespace

// ---------------------------------------------------------------------------
// Primitives
// ---------------------------------------------------------------------------

void WireWriter::u16(std::uint16_t v) {
  u8(static_cast<std::uint8_t>(v & 0xFF));
  u8(static_cast<std::uint8_t>(v >> 8));
}

void WireWriter::u32(std::uint32_t v) {
  for (int i = 0; i < 4; ++i) u8(static_cast<std::uint8_t>(v >> (8 * i)));
}

void WireWriter::u64(std::uint64_t v) {
  for (int i = 0; i < 8; ++i) u8(static_cast<std::uint8_t>(v >> (8 * i)));
}

void WireWriter::f64(double v) { u64(std::bit_cast<std::uint64_t>(v)); }

void WireWriter::str(std::string_view s) {
  u32(static_cast<std::uint32_t>(s.size()));
  buf_.append(s.data(), s.size());
}

void WireReader::need(std::size_t n) const {
  if (pos_ + n > data_.size()) {
    throw WireError("wire: truncated payload (need " + std::to_string(n) +
                    " bytes at offset " + std::to_string(pos_) + " of " +
                    std::to_string(data_.size()) + ")");
  }
}

std::uint8_t WireReader::u8() {
  need(1);
  return static_cast<std::uint8_t>(data_[pos_++]);
}

std::uint16_t WireReader::u16() {
  std::uint16_t v = u8();
  v |= static_cast<std::uint16_t>(u8()) << 8;
  return v;
}

std::uint32_t WireReader::u32() {
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= static_cast<std::uint32_t>(u8()) << (8 * i);
  return v;
}

std::uint64_t WireReader::u64() {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(u8()) << (8 * i);
  return v;
}

double WireReader::f64() { return std::bit_cast<double>(u64()); }

std::string WireReader::str() {
  const std::uint32_t len = u32();
  need(len);
  std::string s(data_.substr(pos_, len));
  pos_ += len;
  return s;
}

// ---------------------------------------------------------------------------
// Content model
// ---------------------------------------------------------------------------

void encode_value(WireWriter& w, const filter::Value& v) {
  if (v.is_int()) {
    w.u8(kValInt);
    w.i64(v.as_int());
  } else if (v.is_double()) {
    w.u8(kValDouble);
    w.f64(v.as_double());
  } else if (v.is_string()) {
    w.u8(kValString);
    w.str(v.as_string());
  } else {
    w.u8(kValBool);
    w.u8(v.as_bool() ? 1 : 0);
  }
}

filter::Value decode_value(WireReader& r) {
  switch (r.u8()) {
    case kValInt:
      return filter::Value(r.i64());
    case kValDouble:
      return filter::Value(r.f64());
    case kValString:
      return filter::Value(r.str());
    case kValBool:
      return filter::Value(r.u8() != 0);
    default:
      throw WireError("wire: unknown value kind");
  }
}

void encode_constraint(WireWriter& w, const filter::Constraint& c) {
  w.u8(static_cast<std::uint8_t>(c.op()));
  switch (c.op()) {
    case filter::Op::any:
      break;
    case filter::Op::eq:
    case filter::Op::ne:
    case filter::Op::lt:
    case filter::Op::le:
    case filter::Op::gt:
    case filter::Op::ge:
      encode_value(w, c.operand());
      break;
    case filter::Op::prefix:
      w.str(c.operand().as_string());
      break;
    case filter::Op::range:
      encode_value(w, c.operand());
      encode_value(w, c.hi());
      break;
    case filter::Op::in_set: {
      w.u32(static_cast<std::uint32_t>(c.values().size()));
      // std::set<Value> iterates in structural (type, value) order —
      // compile-time-fixed, so the byte order is process-independent.
      for (const filter::Value& v : c.values()) encode_value(w, v);
      break;
    }
  }
}

filter::Constraint decode_constraint(WireReader& r) {
  const auto op = static_cast<filter::Op>(r.u8());
  switch (op) {
    case filter::Op::any:
      return filter::Constraint::any();
    case filter::Op::eq:
      return filter::Constraint::eq(decode_value(r));
    case filter::Op::ne:
      return filter::Constraint::ne(decode_value(r));
    case filter::Op::lt:
      return filter::Constraint::lt(decode_value(r));
    case filter::Op::le:
      return filter::Constraint::le(decode_value(r));
    case filter::Op::gt:
      return filter::Constraint::gt(decode_value(r));
    case filter::Op::ge:
      return filter::Constraint::ge(decode_value(r));
    case filter::Op::prefix:
      return filter::Constraint::prefix(r.str());
    case filter::Op::range: {
      filter::Value lo = decode_value(r);
      filter::Value hi = decode_value(r);
      // Constraint::range asserts well-formed bounds; from the wire
      // that must be a rejection, not a process abort.
      if (lo.compare(hi).value_or(1) > 0) {
        throw WireError("wire: range bounds inverted or incomparable");
      }
      return filter::Constraint::range(std::move(lo), std::move(hi));
    }
    case filter::Op::in_set: {
      const std::uint32_t count = r.u32();
      check_count(r, count, 2, "in_set");
      std::set<filter::Value> values;
      for (std::uint32_t i = 0; i < count; ++i) values.insert(decode_value(r));
      return filter::Constraint::in_set(std::move(values));
    }
  }
  throw WireError("wire: unknown constraint op");
}

void encode_filter(WireWriter& w, const filter::Filter& f) {
  // Terms are stored id-sorted; serialize in NAME order so the bytes
  // never depend on process-local mint order.
  std::vector<const filter::Filter::Term*> terms;
  terms.reserve(f.terms().size());
  for (const auto& t : f.terms()) terms.push_back(&t);
  std::sort(terms.begin(), terms.end(),
            [](const filter::Filter::Term* a, const filter::Filter::Term* b) {
              return *a->name < *b->name;
            });
  w.u32(static_cast<std::uint32_t>(terms.size()));
  for (const auto* t : terms) {
    w.str(*t->name);
    encode_constraint(w, t->c);
  }
}

filter::Filter decode_filter(WireReader& r) {
  const std::uint32_t count = r.u32();
  check_count(r, count, 5, "filter term");
  filter::Filter f;
  for (std::uint32_t i = 0; i < count; ++i) {
    const std::string name = r.str();
    f.where(name, decode_constraint(r));  // interns into the local table
  }
  return f;
}

void encode_notification(WireWriter& w, const filter::Notification& n) {
  const auto& table = filter::AttrTable::global();
  std::vector<const filter::Notification::Attr*> attrs;
  attrs.reserve(n.attrs().size());
  for (const auto& a : n.attrs()) attrs.push_back(&a);
  std::sort(attrs.begin(), attrs.end(),
            [&](const filter::Notification::Attr* a,
                const filter::Notification::Attr* b) {
              return table.name(a->id) < table.name(b->id);
            });
  w.u32(static_cast<std::uint32_t>(attrs.size()));
  for (const auto* a : attrs) {
    w.str(table.name(a->id));
    encode_value(w, a->value);
  }
  w.u64(n.id().value());
  w.u32(n.producer().value());
  w.u64(n.producer_seq());
  w.i64(n.publish_time());
}

filter::Notification decode_notification(WireReader& r) {
  const std::uint32_t count = r.u32();
  check_count(r, count, 5, "notification attribute");
  filter::Notification n;
  for (std::uint32_t i = 0; i < count; ++i) {
    const std::string name = r.str();
    n.set(name, decode_value(r));
  }
  const NotificationId id(r.u64());
  const ClientId producer(r.u32());
  const std::uint64_t seq = r.u64();
  const sim::TimePoint t = r.i64();
  n.stamp(id, producer, seq, t);
  return n;
}

// ---------------------------------------------------------------------------
// Protocol pieces
// ---------------------------------------------------------------------------

namespace {

void encode_subkey(WireWriter& w, const SubKey& k) {
  w.u32(k.client.value());
  w.u32(k.sub);
}

SubKey decode_subkey(WireReader& r) {
  SubKey k;
  k.client = ClientId(r.u32());
  k.sub = r.u32();
  return k;
}

void encode_stamped(WireWriter& w, const net::StampedNotification& sn) {
  encode_notification(w, sn.notification);
  w.u64(sn.seq);
}

net::StampedNotification decode_stamped(WireReader& r) {
  net::StampedNotification sn;
  sn.notification = decode_notification(r);
  sn.seq = r.u64();
  return sn;
}

void encode_profile(WireWriter& w, const location::UncertaintyProfile& p) {
  using Kind = location::UncertaintyProfile::Kind;
  w.u8(static_cast<std::uint8_t>(p.kind()));
  switch (p.kind()) {
    case Kind::global_resub:
    case Kind::flooding:
      break;
    case Kind::adaptive: {
      w.i64(p.delta());
      w.u32(static_cast<std::uint32_t>(p.hop_delays().size()));
      for (sim::Duration d : p.hop_delays()) w.i64(d);
      break;
    }
    case Kind::explicit_steps: {
      w.u32(static_cast<std::uint32_t>(p.explicit_q().size()));
      for (std::size_t q : p.explicit_q()) w.u64(q);
      break;
    }
  }
}

location::UncertaintyProfile decode_profile(WireReader& r) {
  using Kind = location::UncertaintyProfile::Kind;
  switch (static_cast<Kind>(r.u8())) {
    case Kind::global_resub:
      return location::UncertaintyProfile::global_resub();
    case Kind::flooding:
      return location::UncertaintyProfile::flooding();
    case Kind::adaptive: {
      const sim::Duration delta = r.i64();
      if (delta <= 0) throw WireError("wire: non-positive profile delta");
      const std::uint32_t count = r.u32();
      check_count(r, count, 8, "profile hop delay");
      std::vector<sim::Duration> hops;
      hops.reserve(count);
      for (std::uint32_t i = 0; i < count; ++i) {
        const sim::Duration hop = r.i64();
        if (hop < 0) throw WireError("wire: negative profile hop delay");
        hops.push_back(hop);
      }
      return location::UncertaintyProfile::adaptive(delta, std::move(hops));
    }
    case Kind::explicit_steps: {
      const std::uint32_t count = r.u32();
      check_count(r, count, 8, "profile step");
      std::vector<std::size_t> steps;
      steps.reserve(count);
      for (std::uint32_t i = 0; i < count; ++i) {
        steps.push_back(static_cast<std::size_t>(r.u64()));
      }
      return location::UncertaintyProfile::explicit_steps(std::move(steps));
    }
  }
  throw WireError("wire: unknown uncertainty profile kind");
}

void encode_ld_spec(WireWriter& w, const location::LdSpec& s) {
  encode_filter(w, s.base);
  w.str(s.location_attr);
  w.u32(s.vicinity_radius);
  encode_profile(w, s.profile);
}

location::LdSpec decode_ld_spec(WireReader& r) {
  location::LdSpec s;
  s.base = decode_filter(r);
  s.location_attr = r.str();
  s.vicinity_radius = r.u32();
  s.profile = decode_profile(r);
  return s;
}

void encode_spec(WireWriter& w, const net::SubscriptionSpec& s) {
  if (const auto* f = std::get_if<filter::Filter>(&s)) {
    w.u8(0);
    encode_filter(w, *f);
  } else {
    w.u8(1);
    encode_ld_spec(w, std::get<location::LdSpec>(s));
  }
}

net::SubscriptionSpec decode_spec(WireReader& r) {
  switch (r.u8()) {
    case 0:
      return decode_filter(r);
    case 1:
      return decode_ld_spec(r);
    default:
      throw WireError("wire: unknown subscription spec kind");
  }
}

/// LocationIds are minted by LocationGraph construction, which is
/// single-threaded and fixed by the (shared) config text — unlike
/// AttrIds they are identical in every process of a deployment, so the
/// raw value (including the invalid sentinel) is wire-safe.
void encode_loc(WireWriter& w, LocationId loc) { w.u32(loc.value()); }

LocationId decode_loc(WireReader& r) { return LocationId(r.u32()); }

}  // namespace

// ---------------------------------------------------------------------------
// Messages
// ---------------------------------------------------------------------------

std::string encode_message(const net::Message& m) {
  WireWriter w;
  std::visit(
      [&w](const auto& msg) {
        using T = std::decay_t<decltype(msg)>;
        if constexpr (std::is_same_v<T, net::PublishMsg>) {
          w.u8(kTagPublish);
          encode_notification(w, msg.n);
        } else if constexpr (std::is_same_v<T, net::DeliverMsg>) {
          w.u8(kTagDeliver);
          encode_subkey(w, msg.key);
          encode_stamped(w, msg.sn);
        } else if constexpr (std::is_same_v<T, net::SubscribeMsg>) {
          w.u8(kTagSubscribe);
          encode_filter(w, msg.f);
          w.u32(static_cast<std::uint32_t>(msg.tags.size()));
          for (const SubKey& k : msg.tags) encode_subkey(w, k);
        } else if constexpr (std::is_same_v<T, net::UnsubscribeMsg>) {
          w.u8(kTagUnsubscribe);
          encode_filter(w, msg.f);
        } else if constexpr (std::is_same_v<T, net::AdvertiseMsg>) {
          w.u8(kTagAdvertise);
          w.u64(msg.id.value());  // rebeca-lint: allow(WIRE-NAME, AdvId is a process-stable domain id, not an interned AttrId)
          encode_filter(w, msg.f);
        } else if constexpr (std::is_same_v<T, net::UnadvertiseMsg>) {
          w.u8(kTagUnadvertise);
          w.u64(msg.id.value());  // rebeca-lint: allow(WIRE-NAME, AdvId is a process-stable domain id, not an interned AttrId)
        } else if constexpr (std::is_same_v<T, net::RelocateSubMsg>) {
          w.u8(kTagRelocateSub);
          encode_subkey(w, msg.key);
          encode_filter(w, msg.f);
          w.u64(msg.epoch);
          w.u64(msg.last_seq);
        } else if constexpr (std::is_same_v<T, net::FetchMsg>) {
          w.u8(kTagFetch);
          encode_subkey(w, msg.key);
          encode_filter(w, msg.f);
          w.u64(msg.epoch);
          w.u64(msg.last_seq);
        } else if constexpr (std::is_same_v<T, net::ReExposeMsg>) {
          w.u8(kTagReExpose);
          encode_subkey(w, msg.key);
          encode_filter(w, msg.f);
          w.u64(msg.epoch);
        } else if constexpr (std::is_same_v<T, net::ReExposeAckMsg>) {
          w.u8(kTagReExposeAck);
          encode_subkey(w, msg.key);
          w.u64(msg.epoch);
        } else if constexpr (std::is_same_v<T, net::ReplayMsg>) {
          w.u8(kTagReplay);
          encode_subkey(w, msg.key);
          w.u64(msg.epoch);
          w.u32(static_cast<std::uint32_t>(msg.batch.size()));
          for (const auto& sn : msg.batch) encode_stamped(w, sn);
          w.u64(msg.truncated);
          w.u64(msg.next_seq);
        } else if constexpr (std::is_same_v<T, net::LdSubscribeMsg>) {
          w.u8(kTagLdSubscribe);
          encode_subkey(w, msg.key);
          encode_ld_spec(w, msg.spec);
          encode_loc(w, msg.loc);
          w.u32(msg.hop);
        } else if constexpr (std::is_same_v<T, net::LdUnsubscribeMsg>) {
          w.u8(kTagLdUnsubscribe);
          encode_subkey(w, msg.key);
        } else if constexpr (std::is_same_v<T, net::LdMoveMsg>) {
          w.u8(kTagLdMove);
          encode_subkey(w, msg.key);
          encode_loc(w, msg.loc);
          w.u32(msg.hop);
          w.u64(msg.move_seq);
          w.u32(msg.extra_steps);
        } else if constexpr (std::is_same_v<T, net::ClientHelloMsg>) {
          w.u8(kTagClientHello);
          w.u32(msg.client.value());
          w.u32(static_cast<std::uint32_t>(msg.resubs.size()));
          for (const auto& r : msg.resubs) {
            encode_subkey(w, r.key);
            encode_spec(w, r.spec);
            w.u64(r.epoch);
            w.u64(r.last_seq);
            encode_loc(w, r.loc);
          }
        } else if constexpr (std::is_same_v<T, net::ClientByeMsg>) {
          w.u8(kTagClientBye);
          w.u32(msg.client.value());
        } else if constexpr (std::is_same_v<T, net::ClientSubscribeMsg>) {
          w.u8(kTagClientSubscribe);
          encode_subkey(w, msg.key);
          encode_spec(w, msg.spec);
          encode_loc(w, msg.loc);
        } else if constexpr (std::is_same_v<T, net::ClientUnsubscribeMsg>) {
          w.u8(kTagClientUnsubscribe);
          encode_subkey(w, msg.key);
        } else if constexpr (std::is_same_v<T, net::ClientPublishMsg>) {
          w.u8(kTagClientPublish);
          encode_notification(w, msg.n);
        } else if constexpr (std::is_same_v<T, net::ClientAdvertiseMsg>) {
          w.u8(kTagClientAdvertise);
          w.u64(msg.id.value());  // rebeca-lint: allow(WIRE-NAME, AdvId is a process-stable domain id, not an interned AttrId)
          encode_filter(w, msg.f);
        } else if constexpr (std::is_same_v<T, net::ClientUnadvertiseMsg>) {
          w.u8(kTagClientUnadvertise);
          w.u64(msg.id.value());  // rebeca-lint: allow(WIRE-NAME, AdvId is a process-stable domain id, not an interned AttrId)
        } else if constexpr (std::is_same_v<T, net::ClientMoveMsg>) {
          w.u8(kTagClientMove);
          w.u32(msg.client.value());
          encode_loc(w, msg.loc);
        } else {
          static_assert(sizeof(T) == 0, "unhandled message alternative");
        }
      },
      m);
  return w.take();
}

net::Message decode_message(std::string_view bytes) {
  WireReader r(bytes);
  const std::uint8_t tag = r.u8();
  net::Message m;
  switch (tag) {
    case kTagPublish:
      m = net::PublishMsg{decode_notification(r)};
      break;
    case kTagDeliver: {
      net::DeliverMsg msg;
      msg.key = decode_subkey(r);
      msg.sn = decode_stamped(r);
      m = std::move(msg);
      break;
    }
    case kTagSubscribe: {
      net::SubscribeMsg msg;
      msg.f = decode_filter(r);
      const std::uint32_t count = r.u32();
      check_count(r, count, 8, "subscribe tag");
      for (std::uint32_t i = 0; i < count; ++i) msg.tags.insert(decode_subkey(r));
      m = std::move(msg);
      break;
    }
    case kTagUnsubscribe:
      m = net::UnsubscribeMsg{decode_filter(r)};
      break;
    case kTagAdvertise: {
      net::AdvertiseMsg msg;
      msg.id = AdvId(r.u64());
      msg.f = decode_filter(r);
      m = std::move(msg);
      break;
    }
    case kTagUnadvertise:
      m = net::UnadvertiseMsg{AdvId(r.u64())};
      break;
    case kTagRelocateSub: {
      net::RelocateSubMsg msg;
      msg.key = decode_subkey(r);
      msg.f = decode_filter(r);
      msg.epoch = r.u64();
      msg.last_seq = r.u64();
      m = std::move(msg);
      break;
    }
    case kTagFetch: {
      net::FetchMsg msg;
      msg.key = decode_subkey(r);
      msg.f = decode_filter(r);
      msg.epoch = r.u64();
      msg.last_seq = r.u64();
      m = std::move(msg);
      break;
    }
    case kTagReExpose: {
      net::ReExposeMsg msg;
      msg.key = decode_subkey(r);
      msg.f = decode_filter(r);
      msg.epoch = r.u64();
      m = std::move(msg);
      break;
    }
    case kTagReExposeAck: {
      net::ReExposeAckMsg msg;
      msg.key = decode_subkey(r);
      msg.epoch = r.u64();
      m = std::move(msg);
      break;
    }
    case kTagReplay: {
      net::ReplayMsg msg;
      msg.key = decode_subkey(r);
      msg.epoch = r.u64();
      const std::uint32_t count = r.u32();
      check_count(r, count, 8, "replay batch entry");
      msg.batch.reserve(count);
      for (std::uint32_t i = 0; i < count; ++i) {
        msg.batch.push_back(decode_stamped(r));
      }
      msg.truncated = r.u64();
      msg.next_seq = r.u64();
      m = std::move(msg);
      break;
    }
    case kTagLdSubscribe: {
      net::LdSubscribeMsg msg;
      msg.key = decode_subkey(r);
      msg.spec = decode_ld_spec(r);
      msg.loc = decode_loc(r);
      msg.hop = r.u32();
      m = std::move(msg);
      break;
    }
    case kTagLdUnsubscribe:
      m = net::LdUnsubscribeMsg{decode_subkey(r)};
      break;
    case kTagLdMove: {
      net::LdMoveMsg msg;
      msg.key = decode_subkey(r);
      msg.loc = decode_loc(r);
      msg.hop = r.u32();
      msg.move_seq = r.u64();
      msg.extra_steps = r.u32();
      m = std::move(msg);
      break;
    }
    case kTagClientHello: {
      net::ClientHelloMsg msg;
      msg.client = ClientId(r.u32());
      const std::uint32_t count = r.u32();
      check_count(r, count, 8, "hello resub");
      msg.resubs.reserve(count);
      for (std::uint32_t i = 0; i < count; ++i) {
        net::ClientHelloMsg::Resub resub;
        resub.key = decode_subkey(r);
        resub.spec = decode_spec(r);
        resub.epoch = r.u64();
        resub.last_seq = r.u64();
        resub.loc = decode_loc(r);
        msg.resubs.push_back(std::move(resub));
      }
      m = std::move(msg);
      break;
    }
    case kTagClientBye:
      m = net::ClientByeMsg{ClientId(r.u32())};
      break;
    case kTagClientSubscribe: {
      net::ClientSubscribeMsg msg;
      msg.key = decode_subkey(r);
      msg.spec = decode_spec(r);
      msg.loc = decode_loc(r);
      m = std::move(msg);
      break;
    }
    case kTagClientUnsubscribe:
      m = net::ClientUnsubscribeMsg{decode_subkey(r)};
      break;
    case kTagClientPublish:
      m = net::ClientPublishMsg{decode_notification(r)};
      break;
    case kTagClientAdvertise: {
      net::ClientAdvertiseMsg msg;
      msg.id = AdvId(r.u64());
      msg.f = decode_filter(r);
      m = std::move(msg);
      break;
    }
    case kTagClientUnadvertise:
      m = net::ClientUnadvertiseMsg{AdvId(r.u64())};
      break;
    case kTagClientMove: {
      net::ClientMoveMsg msg;
      msg.client = ClientId(r.u32());
      msg.loc = decode_loc(r);
      m = std::move(msg);
      break;
    }
    default:
      throw WireError("wire: unknown message tag " + std::to_string(tag));
  }
  if (!r.done()) {
    throw WireError("wire: trailing bytes after " + net::message_name(m));
  }
  return m;
}

}  // namespace rebeca::transport
