// Length-prefixed wire codec for the broker message plane.
//
// Everything a Link carries in the simulators — the full net::Message
// variant, data/admin/relocation/location/client planes — encodes into a
// flat byte string and decodes back on another process. Two invariants
// make the format deployment-safe:
//
//   name-keyed     Attributes serialize by *name*, never by AttrId:
//                  attribute ids are minted in process-local first-use
//                  order (which varies with thread scheduling), so an id
//                  on the wire would mean a different attribute at the
//                  receiver. Filters and notifications also iterate in
//                  attribute-NAME order while encoding, so the bytes are
//                  identical no matter which order a process happened to
//                  intern names in (tests/wire_codec_test proves this by
//                  diffing dumps from processes with scrambled interners).
//   tag-stable     Every message alternative has an explicit, frozen tag
//                  (kTag* below) — never the std::variant index, which
//                  silently renumbers when the variant grows.
//
// Integers are little-endian fixed width; strings and vectors carry a
// u32 length/count prefix. Decoding is bounds-checked and throws
// WireError on truncated or malformed input (a remote peer is untrusted
// input even on loopback).
#ifndef REBECA_TRANSPORT_WIRE_HPP
#define REBECA_TRANSPORT_WIRE_HPP

#include <cstdint>
#include <stdexcept>
#include <string>
#include <string_view>

#include "src/net/message.hpp"

namespace rebeca::transport {

/// Malformed or truncated wire input.
class WireError : public std::runtime_error {
 public:
  explicit WireError(const std::string& what) : std::runtime_error(what) {}
};

/// Append-only byte sink with primitive writers.
class WireWriter {
 public:
  void u8(std::uint8_t v) { buf_.push_back(static_cast<char>(v)); }
  void u16(std::uint16_t v);
  void u32(std::uint32_t v);
  void u64(std::uint64_t v);
  void i64(std::int64_t v) { u64(static_cast<std::uint64_t>(v)); }
  void f64(double v);
  void str(std::string_view s);

  [[nodiscard]] const std::string& bytes() const { return buf_; }
  [[nodiscard]] std::string take() { return std::move(buf_); }

 private:
  std::string buf_;
};

/// Bounds-checked cursor over received bytes. Throws WireError on any
/// read past the end.
class WireReader {
 public:
  explicit WireReader(std::string_view data) : data_(data) {}

  [[nodiscard]] std::uint8_t u8();
  [[nodiscard]] std::uint16_t u16();
  [[nodiscard]] std::uint32_t u32();
  [[nodiscard]] std::uint64_t u64();
  [[nodiscard]] std::int64_t i64() { return static_cast<std::int64_t>(u64()); }
  [[nodiscard]] double f64();
  [[nodiscard]] std::string str();

  [[nodiscard]] bool done() const { return pos_ == data_.size(); }
  [[nodiscard]] std::size_t remaining() const { return data_.size() - pos_; }

 private:
  void need(std::size_t n) const;

  std::string_view data_;
  std::size_t pos_ = 0;
};

// ---- content-model pieces (exposed for tests and the session layer) ----

void encode_value(WireWriter& w, const filter::Value& v);
[[nodiscard]] filter::Value decode_value(WireReader& r);

void encode_constraint(WireWriter& w, const filter::Constraint& c);
[[nodiscard]] filter::Constraint decode_constraint(WireReader& r);

/// Terms travel as (name, constraint) pairs in attribute-name order.
void encode_filter(WireWriter& w, const filter::Filter& f);
[[nodiscard]] filter::Filter decode_filter(WireReader& r);

/// Attributes travel as (name, value) pairs in attribute-name order,
/// followed by the identity metadata (id, producer, seq, publish time).
void encode_notification(WireWriter& w, const filter::Notification& n);
[[nodiscard]] filter::Notification decode_notification(WireReader& r);

// ---- the full message plane ----

/// Encodes one net::Message as [tag u8][payload]. Stable across
/// processes regardless of attribute-interning order.
[[nodiscard]] std::string encode_message(const net::Message& m);

/// Inverse of encode_message. Throws WireError on malformed input or
/// trailing garbage.
[[nodiscard]] net::Message decode_message(std::string_view bytes);

}  // namespace rebeca::transport

#endif  // REBECA_TRANSPORT_WIRE_HPP
