#include "src/transport/session.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <memory>
#include <stdexcept>

#include "src/transport/wire.hpp"

namespace rebeca::transport {

namespace {

/// Full blocking send; handles partial writes and EINTR.
bool send_all(int fd, const char* data, std::size_t len) {
  while (len > 0) {
    const ssize_t n = ::send(fd, data, len, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    data += n;
    len -= static_cast<std::size_t>(n);
  }
  return true;
}

/// Full blocking receive; false on EOF, error, or timeout.
bool recv_all(int fd, char* data, std::size_t len) {
  while (len > 0) {
    const ssize_t n = ::recv(fd, data, len, 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    if (n == 0) return false;  // orderly EOF
    data += n;
    len -= static_cast<std::size_t>(n);
  }
  return true;
}

sockaddr_in make_addr(const std::string& host, std::uint16_t port) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  const std::string ip = host == "localhost" ? "127.0.0.1" : host;
  if (::inet_pton(AF_INET, ip.c_str(), &addr.sin_addr) != 1) {
    throw std::runtime_error("transport: bad IPv4 address '" + host + "'");
  }
  return addr;
}

}  // namespace

// ---------------------------------------------------------------------------
// Handshake codecs
// ---------------------------------------------------------------------------

std::string encode_hello(const SessionHello& h) {
  WireWriter w;
  w.u8(static_cast<std::uint8_t>(h.kind));
  w.u32(h.node);
  w.u32(h.client);
  w.u64(h.session);
  w.u32(h.attempt);
  return w.take();
}

SessionHello decode_hello(std::string_view bytes) {
  WireReader r(bytes);
  SessionHello h;
  const std::uint8_t kind = r.u8();
  if (kind > 1) throw WireError("session: unknown hello kind");
  h.kind = static_cast<SessionHello::Kind>(kind);
  h.node = r.u32();
  h.client = r.u32();
  h.session = r.u64();
  h.attempt = r.u32();
  if (!r.done()) throw WireError("session: trailing bytes in hello");
  return h;
}

std::string encode_welcome(const SessionWelcome& w) {
  WireWriter wr;
  wr.u64(w.session);
  wr.u32(w.node);
  return wr.take();
}

SessionWelcome decode_welcome(std::string_view bytes) {
  WireReader r(bytes);
  SessionWelcome w;
  w.session = r.u64();
  w.node = r.u32();
  if (!r.done()) throw WireError("session: trailing bytes in welcome");
  return w;
}

// ---------------------------------------------------------------------------
// Conn
// ---------------------------------------------------------------------------

Conn& Conn::operator=(Conn&& other) noexcept {
  if (this != &other) {
    if (fd_ >= 0) ::close(fd_);
    fd_ = other.fd_;
    other.fd_ = -1;
  }
  return *this;
}

Conn::~Conn() {
  if (fd_ >= 0) ::close(fd_);
}

std::optional<Conn> Conn::connect(const std::string& host,
                                  std::uint16_t port) {
  const sockaddr_in addr = make_addr(host, port);
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return std::nullopt;
  // rebeca-lint: allow(CAST-AUDIT, sockaddr_in -> sockaddr is the POSIX sockets API contract)
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    ::close(fd);
    return std::nullopt;
  }
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return Conn(fd);
}

bool Conn::write_frame(std::uint8_t type, std::string_view payload) {
  if (fd_ < 0) return false;
  const auto len = static_cast<std::uint32_t>(payload.size() + 1);
  // One contiguous buffer → one send() for the typical small frame.
  std::string buf;
  buf.reserve(4 + len);
  for (int i = 0; i < 4; ++i) {
    buf.push_back(static_cast<char>((len >> (8 * i)) & 0xFF));
  }
  buf.push_back(static_cast<char>(type));
  buf.append(payload.data(), payload.size());
  return send_all(fd_, buf.data(), buf.size());
}

bool Conn::read_frame(std::uint8_t& type, std::string& payload) {
  if (fd_ < 0) return false;
  char head[4];
  if (!recv_all(fd_, head, sizeof(head))) return false;
  std::uint32_t len = 0;
  for (int i = 0; i < 4; ++i) {
    len |= static_cast<std::uint32_t>(static_cast<unsigned char>(head[i]))
           << (8 * i);
  }
  if (len == 0 || len > kMaxFrameBytes) return false;
  std::string body(len, '\0');
  if (!recv_all(fd_, body.data(), body.size())) return false;
  type = static_cast<std::uint8_t>(body[0]);
  payload.assign(body, 1, body.size() - 1);
  return true;
}

void Conn::shutdown() {
  if (fd_ >= 0) ::shutdown(fd_, SHUT_RDWR);
}

void Conn::set_recv_timeout(std::chrono::milliseconds timeout) {
  if (fd_ < 0) return;
  timeval tv{};
  tv.tv_sec = static_cast<time_t>(timeout.count() / 1000);
  tv.tv_usec = static_cast<suseconds_t>((timeout.count() % 1000) * 1000);
  ::setsockopt(fd_, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
}

// ---------------------------------------------------------------------------
// PeerSession
// ---------------------------------------------------------------------------

PeerSession::PeerSession(RealtimeExecutor& exec, Conn conn,
                         MessageFn on_message, ClosedFn on_closed)
    : exec_(exec), conn_(std::move(conn)),
      control_(std::make_shared<Control>()) {
  control_->on_message = std::move(on_message);
  control_->on_closed = std::move(on_closed);
  reader_ = std::thread([this] { reader_loop(); });
}

PeerSession::~PeerSession() { close(); }

void PeerSession::reader_loop() {
  std::uint8_t type = 0;
  std::string payload;
  while (conn_.read_frame(type, payload)) {
    if (type == kFrameMsg) {
      // Hand the payload to the single-threaded entity world. The event
      // co-owns the control block: a session torn down with events still
      // queued silences them instead of dangling.
      exec_.post([ctl = control_, bytes = std::move(payload)] {
        if (!ctl->dead.load(std::memory_order_acquire)) ctl->on_message(bytes);
      });
      payload.clear();
    }
    // Unexpected handshake frames mid-session are ignored.
  }
  exec_.post([ctl = control_] {
    if (!ctl->dead.exchange(true, std::memory_order_acq_rel)) {
      ctl->on_closed();
    }
  });
}

bool PeerSession::send_message(const net::Message& m) {
  return send_frame(kFrameMsg, encode_message(m));
}

bool PeerSession::send_frame(std::uint8_t type, std::string_view payload) {
  return conn_.write_frame(type, payload);
}

void PeerSession::close() {
  // Silence first: a deliberate local close must not fire on_closed.
  control_->dead.store(true, std::memory_order_release);
  conn_.shutdown();
  if (reader_.joinable()) reader_.join();
}

// ---------------------------------------------------------------------------
// Acceptor
// ---------------------------------------------------------------------------

Acceptor::Acceptor(RealtimeExecutor& exec, const std::string& host,
                   std::uint16_t port, HelloFn on_hello)
    : exec_(exec), on_hello_(std::move(on_hello)) {
  const sockaddr_in addr = make_addr(host, port);
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) throw std::runtime_error("transport: socket() failed");
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  // rebeca-lint: allow(CAST-AUDIT, sockaddr_in -> sockaddr is the POSIX sockets API contract)
  if (::bind(listen_fd_, reinterpret_cast<const sockaddr*>(&addr),
             sizeof(addr)) != 0 ||
      ::listen(listen_fd_, 64) != 0) {
    const int err = errno;
    ::close(listen_fd_);
    listen_fd_ = -1;
    throw std::runtime_error("transport: cannot listen on " + host + ":" +
                             std::to_string(port) + " (" +
                             std::strerror(err) + ")");
  }
  sockaddr_in bound{};
  socklen_t bound_len = sizeof(bound);
  // rebeca-lint: allow(CAST-AUDIT, sockaddr_in -> sockaddr is the POSIX sockets API contract)
  ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound), &bound_len);
  port_ = ntohs(bound.sin_port);
  accept_ = std::thread([this] { accept_loop(); });
}

Acceptor::~Acceptor() { close(); }

void Acceptor::accept_loop() {
  for (;;) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      return;  // listen socket shut down
    }
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    Conn conn(fd);
    // Handshake read happens here on the accept thread, bounded so a
    // stalled dialer cannot wedge the loop.
    conn.set_recv_timeout(std::chrono::milliseconds(5000));
    std::uint8_t type = 0;
    std::string payload;
    if (!conn.read_frame(type, payload) || type != kFrameHello) continue;
    SessionHello hello;
    try {
      hello = decode_hello(payload);
    } catch (const WireError&) {
      continue;  // garbage on the port; drop it
    }
    conn.set_recv_timeout(std::chrono::milliseconds(0));
    exec_.post([fn = &on_hello_, c = std::move(conn), hello]() mutable {
      (*fn)(std::move(c), hello);
    });
  }
}

void Acceptor::close() {
  if (listen_fd_ < 0) return;
  // shutdown() (not close()) reliably unblocks a concurrent accept().
  ::shutdown(listen_fd_, SHUT_RDWR);
  if (accept_.joinable()) accept_.join();
  ::close(listen_fd_);
  listen_fd_ = -1;
}

// ---------------------------------------------------------------------------
// dial
// ---------------------------------------------------------------------------

std::optional<std::pair<Conn, SessionWelcome>> dial(
    const std::string& host, std::uint16_t port, const SessionHello& hello,
    std::chrono::milliseconds timeout) {
  const auto deadline = std::chrono::steady_clock::now() + timeout;
  for (;;) {
    auto conn = Conn::connect(host, port);
    if (conn) {
      if (!conn->write_frame(kFrameHello, encode_hello(hello))) {
        return std::nullopt;
      }
      conn->set_recv_timeout(std::chrono::milliseconds(5000));
      std::uint8_t type = 0;
      std::string payload;
      if (!conn->read_frame(type, payload) || type != kFrameWelcome) {
        return std::nullopt;
      }
      conn->set_recv_timeout(std::chrono::milliseconds(0));
      try {
        return std::make_pair(std::move(*conn), decode_welcome(payload));
      } catch (const WireError&) {
        return std::nullopt;
      }
    }
    if (std::chrono::steady_clock::now() >= deadline) return std::nullopt;
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
}

}  // namespace rebeca::transport
