// TCP peer layer with a mobility-aware session handshake.
//
// Three pieces bind the simulator's Link abstraction onto real sockets:
//
//   Conn         RAII socket with the frame codec: every frame is
//                [u32 length][u8 type][payload], length counting type +
//                payload. Three frame types exist — HELLO and WELCOME
//                (the session handshake) and MSG (one encoded
//                net::Message, see wire.hpp).
//   PeerSession  A connected conn plus its reader thread. Incoming MSG
//                payloads and the close notification are posted onto a
//                RealtimeExecutor, so everything above this class is
//                single-threaded; send_message() encodes and writes from
//                the executor thread.
//   Acceptor     Listening socket plus accept thread. Performs the
//                server side of the handshake (reads HELLO) and posts
//                the accepted conn + hello to the executor.
//
// The handshake carries the *session identity*, which is what makes
// mobility work over real sockets (the FSP idea: session IDs live above
// addresses). A client mints its session ID once, at first attach; every
// later reconnect — in particular a moveto() to a *different* broker
// process — presents the same session ID with a bumped attempt counter.
// The socket is the transient thing; the session (and the client's
// epochs/last_seq carried in its ClientHelloMsg) is what resumes, which
// is exactly the state the existing fetch/replay recovery keys on.
#ifndef REBECA_TRANSPORT_SESSION_HPP
#define REBECA_TRANSPORT_SESSION_HPP

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <thread>
#include <utility>

#include "src/net/message.hpp"
#include "src/transport/realtime.hpp"

namespace rebeca::transport {

/// Frame types on the wire.
enum : std::uint8_t {
  kFrameHello = 1,
  kFrameWelcome = 2,
  kFrameMsg = 3,
};

/// Upper bound on a frame body; a length prefix beyond this is treated
/// as a protocol error (protects against garbage on the port).
inline constexpr std::uint32_t kMaxFrameBytes = 64u * 1024u * 1024u;

/// First frame on every connection, sent by the dialing side.
struct SessionHello {
  enum class Kind : std::uint8_t { broker = 0, client = 1 };
  Kind kind = Kind::client;
  /// Dialing broker's node index (kind == broker).
  std::uint32_t node = 0;
  /// Client id (kind == client).
  std::uint32_t client = 0;
  /// Stable session id, minted once at first attach; survives every
  /// reconnect (that is the point).
  std::uint64_t session = 0;
  /// Reconnect counter: 0 on first attach, bumped per re-dial.
  std::uint32_t attempt = 0;
};

/// Handshake reply from the accepting side.
struct SessionWelcome {
  std::uint64_t session = 0;
  /// Accepting broker's node index.
  std::uint32_t node = 0;
};

[[nodiscard]] std::string encode_hello(const SessionHello& h);
[[nodiscard]] SessionHello decode_hello(std::string_view bytes);
[[nodiscard]] std::string encode_welcome(const SessionWelcome& w);
[[nodiscard]] SessionWelcome decode_welcome(std::string_view bytes);

/// Movable RAII socket with the length-prefixed frame codec. Blocking
/// I/O; writers and the reader may run on different threads (one each).
class Conn {
 public:
  Conn() = default;
  explicit Conn(int fd) : fd_(fd) {}
  Conn(Conn&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }
  Conn& operator=(Conn&& other) noexcept;
  Conn(const Conn&) = delete;
  Conn& operator=(const Conn&) = delete;
  ~Conn();

  /// Blocking TCP connect; nullopt on failure. `host` is an IPv4
  /// literal or "localhost".
  static std::optional<Conn> connect(const std::string& host,
                                     std::uint16_t port);

  [[nodiscard]] bool valid() const { return fd_ >= 0; }
  [[nodiscard]] int fd() const { return fd_; }

  /// Writes one complete frame; false on any socket error.
  bool write_frame(std::uint8_t type, std::string_view payload);

  /// Blocks for the next frame. False on orderly EOF, error, or a
  /// malformed length prefix (caller should drop the connection).
  bool read_frame(std::uint8_t& type, std::string& payload);

  /// Half-close both directions: unblocks a reader stuck in
  /// read_frame() on another thread. The fd stays owned until
  /// destruction.
  void shutdown();

  /// Sets a receive timeout (used during the server-side handshake so a
  /// stalled dialer cannot wedge the accept loop). 0 = no timeout.
  void set_recv_timeout(std::chrono::milliseconds timeout);

 private:
  int fd_ = -1;
};

/// A connected session: conn + reader thread, bridged onto an executor.
/// All callbacks run on the executor thread. The callbacks live in a
/// shared control block that posted events co-own, so an event still in
/// the executor queue when the session is destroyed fires into a
/// silenced block instead of freed memory.
class PeerSession {
 public:
  using MessageFn = std::function<void(std::string payload)>;
  using ClosedFn = std::function<void()>;

  /// Starts the reader thread. `on_message` receives each MSG payload;
  /// `on_closed` fires at most once, when the conn dies *remotely* (EOF
  /// or error). A local close() silences both callbacks first — the
  /// closer already knows.
  PeerSession(RealtimeExecutor& exec, Conn conn, MessageFn on_message,
              ClosedFn on_closed);
  ~PeerSession();

  PeerSession(const PeerSession&) = delete;
  PeerSession& operator=(const PeerSession&) = delete;

  /// Encodes `m` (wire.hpp) and writes it as one MSG frame. Executor
  /// thread only. False once the conn is dead.
  bool send_message(const net::Message& m);

  bool send_frame(std::uint8_t type, std::string_view payload);

  /// Silences the callbacks, tears the socket down and joins the reader
  /// thread. Idempotent. Safe to call from inside on_closed itself (the
  /// reader has already posted its last event by then).
  void close();

 private:
  /// Callbacks + liveness flag, co-owned by every posted event.
  struct Control {
    MessageFn on_message;
    ClosedFn on_closed;
    std::atomic<bool> dead{false};
  };

  void reader_loop();

  RealtimeExecutor& exec_;
  Conn conn_;
  std::shared_ptr<Control> control_;
  std::thread reader_;
};

/// Listening socket + accept thread. For each inbound connection the
/// accept thread completes the handshake read (HELLO) and posts
/// (conn, hello) to the executor; replying WELCOME is the callback's
/// job (it decides the session id to confirm).
class Acceptor {
 public:
  using HelloFn = std::function<void(Conn conn, SessionHello hello)>;

  /// Binds and listens. `port` 0 picks an ephemeral port — read it back
  /// with port(). Throws std::runtime_error when the bind fails.
  Acceptor(RealtimeExecutor& exec, const std::string& host,
           std::uint16_t port, HelloFn on_hello);
  ~Acceptor();

  Acceptor(const Acceptor&) = delete;
  Acceptor& operator=(const Acceptor&) = delete;

  /// Bound port (the ephemeral one when constructed with port 0).
  [[nodiscard]] std::uint16_t port() const { return port_; }

  /// Stops accepting and joins the accept thread. Idempotent.
  void close();

 private:
  void accept_loop();

  RealtimeExecutor& exec_;
  HelloFn on_hello_;
  int listen_fd_ = -1;
  std::uint16_t port_ = 0;
  std::thread accept_;
};

/// Client side of the handshake: connect, send HELLO, await WELCOME.
/// Retries the connect until `deadline` wall time passes (the peer's
/// process may not have bound yet); nullopt on timeout or a handshake
/// that fails after connecting.
[[nodiscard]] std::optional<std::pair<Conn, SessionWelcome>> dial(
    const std::string& host, std::uint16_t port, const SessionHello& hello,
    std::chrono::milliseconds timeout);

}  // namespace rebeca::transport

#endif  // REBECA_TRANSPORT_SESSION_HPP
