// Wall-clock Executor: the simulators' scheduling seam, driven by real
// time.
//
// RealtimeExecutor implements sim::Executor over std::chrono::steady_clock
// and a mutex-protected timer heap, so Broker/Client/Link — which only
// ever talk to an Executor& — run unmodified inside a real process. One
// thread calls run() and becomes the *executor thread*: every scheduled
// event fires there, one at a time, exactly like the single-threaded
// simulation loop. Other threads (socket readers, signal waiters) may
// inject work with post()/post_at()/schedule_at(), which are
// thread-safe; the work still executes on the executor thread. This
// keeps all entity state single-threaded — the transport layer's
// concurrency ends at the queue boundary.
//
// Virtual time starts at 0 on construction and advances with the wall
// clock divided by `time_scale`: scale 1.0 is real time, scale 0.01 runs
// a scenario's virtual seconds in wall hundredths (CI smoke tests use
// this to finish in tens of milliseconds). Cancellation via EventHandle
// is supported but — as in the simulators — must happen on the executor
// thread (entities only cancel their own timers from their own events).
#ifndef REBECA_TRANSPORT_REALTIME_HPP
#define REBECA_TRANSPORT_REALTIME_HPP

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "src/sim/executor.hpp"
#include "src/util/rng.hpp"

namespace rebeca::transport {

class RealtimeExecutor final : public sim::Executor {
 public:
  /// `time_scale` = wall seconds per virtual second (must be > 0).
  explicit RealtimeExecutor(std::uint64_t seed = 1, double time_scale = 1.0);
  ~RealtimeExecutor() override;

  // --- sim::Executor ---
  [[nodiscard]] sim::TimePoint now() const override;
  [[nodiscard]] util::Rng& rng() override { return rng_; }
  sim::EventHandle schedule_at(sim::TimePoint when, sim::EventFn fn) override;
  void post_at(sim::TimePoint when, sim::EventFn fn) override;

  /// Thread-safe: run `fn` on the executor thread as soon as possible.
  /// This is how socket reader threads hand decoded frames to the
  /// single-threaded entity world.
  void post(sim::EventFn fn);

  /// Runs the event loop on the calling thread until stop(). Events fire
  /// when their virtual time is due on the scaled wall clock.
  void run();

  /// Thread-safe: wakes run() and makes it return after the in-flight
  /// event (if any) finishes. Pending events are discarded.
  void stop();

  [[nodiscard]] bool stopped() const;

  [[nodiscard]] double time_scale() const { return time_scale_; }

 private:
  struct Scheduled {
    sim::TimePoint when;
    std::uint64_t seq;  // FIFO tiebreak at equal times
    sim::EventFn fn;
    std::shared_ptr<bool> cancelled;
  };
  struct Later {
    bool operator()(const Scheduled& a, const Scheduled& b) const {
      return a.when != b.when ? a.when > b.when : a.seq > b.seq;
    }
  };

  using WallClock = std::chrono::steady_clock;

  [[nodiscard]] WallClock::time_point wall_of(sim::TimePoint when) const;
  void enqueue(sim::TimePoint when, sim::EventFn fn,
               std::shared_ptr<bool> cancelled);

  const double time_scale_;
  const WallClock::time_point start_;
  util::Rng rng_;

  mutable std::mutex mutex_;
  std::condition_variable cv_;
  std::vector<Scheduled> heap_;  // min-heap via Later
  std::uint64_t next_seq_ = 0;
  bool stop_ = false;
};

}  // namespace rebeca::transport

#endif  // REBECA_TRANSPORT_REALTIME_HPP
