#include "src/analysis/fig9_model.hpp"

#include <algorithm>

#include "src/util/assert.hpp"

namespace rebeca::analysis {

namespace {

using location::LocationGraph;
using location::LocationSet;

/// The concrete location set of the filter held by a broker at tree
/// distance `d` from the consumer's border broker (hop index d+1; the
/// border itself holds F_1).
LocationSet set_at_distance(const Fig9Config& cfg, LocationId loc,
                            std::size_t d) {
  location::LdSpec spec;
  spec.vicinity_radius = cfg.vicinity_radius;
  spec.profile = cfg.profile;
  return spec.concrete_set(*cfg.locations, loc, d + 1);
}

}  // namespace

MessageModel build_message_model(const Fig9Config& cfg) {
  REBECA_ASSERT(cfg.topology != nullptr && cfg.locations != nullptr,
                "model needs topology and locations");
  REBECA_ASSERT(!cfg.producer_brokers.empty(), "model needs producers");
  REBECA_ASSERT(cfg.topology->valid(), "topology must be a tree");

  const auto& topo = *cfg.topology;
  const auto& graph = *cfg.locations;
  const std::size_t n_links = topo.edges().size();
  const std::size_t n_loc = graph.size();

  MessageModel model;
  model.publish_rate_hz = cfg.publish_rate_hz;
  model.moves_per_sec = 1.0 / sim::to_seconds(cfg.delta);

  // ---- flooding ----
  // producer client link + every broker link + delivery to the consumer.
  model.flooding_per_notification = 1.0 + static_cast<double>(n_links) + 1.0;

  // ---- new algorithm: notification hops ----
  // For each producer, each consumer location, each notification
  // location: count the contiguous stretch of accepting links from the
  // producer's border toward the consumer, plus the delivery hop.
  const auto dist = topo.distances_from(cfg.consumer_broker);
  double hop_sum = 0;
  for (std::size_t producer : cfg.producer_brokers) {
    const auto path = topo.path(producer, cfg.consumer_broker);
    const std::size_t k = path.size() - 1;  // broker links on the path
    for (std::uint32_t consumer_loc = 0; consumer_loc < n_loc; ++consumer_loc) {
      // Sets along the path, indexed by distance from the consumer's
      // border broker (0 = the border's F_1, …, k = the producer border).
      std::vector<LocationSet> sets;
      sets.reserve(k + 1);
      for (std::size_t d = 0; d <= k; ++d) {
        sets.push_back(set_at_distance(cfg, LocationId(consumer_loc), d));
      }
      for (std::uint32_t note_loc = 0; note_loc < n_loc; ++note_loc) {
        double hops = 1.0;  // producer -> its border broker
        // Travel inward: the link from the distance d+1 broker to the
        // distance d broker is governed by the sender's set (hop d+2,
        // i.e. sets[d+1]). The sets nest, so travel stops at the first
        // rejection.
        bool reached_border = (k == 0);
        for (std::size_t d = k; d-- > 0;) {
          if (!location::set_contains(sets[d + 1], LocationId(note_loc))) break;
          // rebeca-lint: allow(FLOAT-ORDER, hop counts are exact small integers in double; addition is exact, order moot)
          hops += 1.0;
          if (d == 0) reached_border = true;
        }
        // Delivery over the client link: the border's F_1 decides.
        if (reached_border &&
            location::set_contains(sets[0], LocationId(note_loc))) {
          // rebeca-lint: allow(FLOAT-ORDER, hop counts are exact small integers in double; addition is exact, order moot)
          hops += 1.0;
        }
        // rebeca-lint: allow(FLOAT-ORDER, sums exact integer-valued hop counts over the fixed note_loc index loop)
        hop_sum += hops;
      }
    }
  }
  model.newalg_per_notification =
      hop_sum / (static_cast<double>(cfg.producer_brokers.size()) *
                 static_cast<double>(n_loc) * static_cast<double>(n_loc));

  // ---- new algorithm: administrative traffic per move ----
  // A move x→y updates the client link plus every broker link whose
  // consumer-side endpoint's set changed (changes form a distance
  // prefix; the stop rule ends propagation at the first unchanged set).
  // Expectation over all directed movement edges (x, y).
  double admin_sum = 0;
  std::size_t move_count = 0;
  const std::size_t max_d = *std::max_element(dist.begin(), dist.end());
  for (std::uint32_t x = 0; x < n_loc; ++x) {
    for (LocationId y : graph.neighbors(LocationId(x))) {
      ++move_count;
      double msgs = 1.0;  // client -> border
      // Distance prefix where the sets differ.
      std::size_t d_max = 0;
      bool any = false;
      for (std::size_t d = 0; d <= max_d; ++d) {
        if (set_at_distance(cfg, LocationId(x), d) !=
            set_at_distance(cfg, y, d)) {
          d_max = d;
          any = true;
        } else {
          break;
        }
      }
      if (any) {
        // The update crosses every link whose consumer-side endpoint is
        // at distance <= d_max (LD state floods along all branches).
        for (const auto& [a, b] : topo.edges()) {
          // rebeca-lint: allow(FLOAT-ORDER, message counts are exact small integers in double; addition is exact, order moot)
          if (std::min(dist[a], dist[b]) <= d_max) msgs += 1.0;
        }
      }
      // rebeca-lint: allow(FLOAT-ORDER, sums exact integer-valued counts over the fixed movement-edge loop)
      admin_sum += msgs;
    }
  }
  REBECA_ASSERT(move_count > 0, "movement graph has no edges");
  model.newalg_admin_per_move = admin_sum / static_cast<double>(move_count);

  // ---- setup: the initial LD subscription floods every broker link ----
  model.setup_messages = static_cast<double>(n_links);

  return model;
}

}  // namespace rebeca::analysis
