#include "src/net/topology.hpp"

#include <algorithm>
#include <queue>

#include "src/util/assert.hpp"

namespace rebeca::net {

Topology::Topology(std::size_t broker_count,
                   std::vector<std::pair<std::size_t, std::size_t>> edges)
    : broker_count_(broker_count), edges_(std::move(edges)) {
  adjacency_.assign(broker_count_, {});
  for (const auto& [a, b] : edges_) {
    REBECA_ASSERT(a < broker_count_ && b < broker_count_ && a != b,
                  "bad edge " << a << "-" << b);
    adjacency_[a].push_back(b);
    adjacency_[b].push_back(a);
  }
}

Topology Topology::chain(std::size_t n) {
  REBECA_ASSERT(n >= 1, "chain needs at least one broker");
  std::vector<std::pair<std::size_t, std::size_t>> edges;
  for (std::size_t i = 0; i + 1 < n; ++i) edges.emplace_back(i, i + 1);
  return Topology(n, std::move(edges));
}

Topology Topology::star(std::size_t n) {
  REBECA_ASSERT(n >= 1, "star needs at least one broker");
  std::vector<std::pair<std::size_t, std::size_t>> edges;
  for (std::size_t i = 1; i < n; ++i) edges.emplace_back(0, i);
  return Topology(n, std::move(edges));
}

Topology Topology::balanced_tree(std::size_t depth, std::size_t fanout) {
  REBECA_ASSERT(fanout >= 1, "fanout must be positive");
  std::vector<std::pair<std::size_t, std::size_t>> edges;
  std::size_t count = 1;
  std::vector<std::size_t> frontier{0};
  for (std::size_t d = 0; d < depth; ++d) {
    std::vector<std::size_t> next;
    for (std::size_t parent : frontier) {
      for (std::size_t k = 0; k < fanout; ++k) {
        edges.emplace_back(parent, count);
        next.push_back(count);
        ++count;
      }
    }
    frontier = std::move(next);
  }
  return Topology(count, std::move(edges));
}

Topology Topology::random_tree(std::size_t n, util::Rng& rng) {
  REBECA_ASSERT(n >= 1, "random_tree needs at least one broker");
  std::vector<std::pair<std::size_t, std::size_t>> edges;
  for (std::size_t i = 1; i < n; ++i) {
    edges.emplace_back(rng.index(i), i);
  }
  return Topology(n, std::move(edges));
}

const std::vector<std::size_t>& Topology::neighbors(std::size_t broker) const {
  REBECA_ASSERT(broker < broker_count_, "broker out of range");
  return adjacency_[broker];
}

bool Topology::valid() const {
  if (edges_.size() + 1 != broker_count_) return false;
  const auto dist = distances_from(0);
  return std::all_of(dist.begin(), dist.end(),
                     [&](std::size_t d) { return d != SIZE_MAX; });
}

std::vector<std::size_t> Topology::distances_from(std::size_t root) const {
  REBECA_ASSERT(root < broker_count_, "root out of range");
  std::vector<std::size_t> dist(broker_count_, SIZE_MAX);
  std::queue<std::size_t> queue;
  dist[root] = 0;
  queue.push(root);
  while (!queue.empty()) {
    const std::size_t u = queue.front();
    queue.pop();
    for (std::size_t v : adjacency_[u]) {
      if (dist[v] == SIZE_MAX) {
        dist[v] = dist[u] + 1;
        queue.push(v);
      }
    }
  }
  return dist;
}

std::vector<std::size_t> Topology::path(std::size_t a, std::size_t b) const {
  REBECA_ASSERT(a < broker_count_ && b < broker_count_, "endpoint out of range");
  // BFS parents from a, then walk back from b.
  std::vector<std::size_t> parent(broker_count_, SIZE_MAX);
  std::queue<std::size_t> queue;
  parent[a] = a;
  queue.push(a);
  while (!queue.empty() && parent[b] == SIZE_MAX) {
    const std::size_t u = queue.front();
    queue.pop();
    for (std::size_t v : adjacency_[u]) {
      if (parent[v] == SIZE_MAX) {
        parent[v] = u;
        queue.push(v);
      }
    }
  }
  REBECA_ASSERT(parent[b] != SIZE_MAX, "graph is disconnected");
  std::vector<std::size_t> result{b};
  while (result.back() != a) result.push_back(parent[result.back()]);
  std::reverse(result.begin(), result.end());
  return result;
}

std::size_t Topology::diameter() const {
  // Two BFS passes (exact on trees): farthest node from 0, then farthest
  // from that.
  auto d0 = distances_from(0);
  const auto far = static_cast<std::size_t>(
      std::max_element(d0.begin(), d0.end()) - d0.begin());
  auto d1 = distances_from(far);
  return *std::max_element(d1.begin(), d1.end());
}

}  // namespace rebeca::net
