// Wire messages of the broker network.
//
// Everything brokers and clients exchange is one of these structs,
// carried by a Link. The set falls into five planes:
//
//   data        — PublishMsg (notifications en route), DeliverMsg
//                 (stamped notification on a client link)
//   admin       — Subscribe/Unsubscribe (forward-set diffs),
//                 Advertise/Unadvertise
//   relocation  — RelocateSubMsg (the roaming client's re-issued
//                 subscription hunting for the old path), FetchMsg (the
//                 junction's fetch request), ReplayMsg (the virtual
//                 counterpart's buffered notifications)
//   location    — LdSubscribe/LdUnsubscribe/LdMove (location-dependent
//                 subscription propagation, paper Sec. 5)
//   client      — hello/bye/subscribe/unsubscribe/publish/advertise/move
//
// All communication related to relocation travels inside the broker
// network — the paper's "pub/sub adherence" requirement (Sec. 4.1): no
// out-of-band channel between old and new broker exists.
#ifndef REBECA_NET_MESSAGE_HPP
#define REBECA_NET_MESSAGE_HPP

#include <cstdint>
#include <set>
#include <string>
#include <variant>
#include <vector>

#include "src/filter/filter.hpp"
#include "src/filter/notification.hpp"
#include "src/location/ld_spec.hpp"
#include "src/metrics/counters.hpp"
#include "src/util/domain_ids.hpp"

namespace rebeca::net {

/// A notification plus the per-(client, subscription) delivery sequence
/// number annotated by the border broker (paper Sec. 4.1: "the last
/// received sequence number for this subscription").
struct StampedNotification {
  filter::Notification notification;
  std::uint64_t seq = 0;
};

/// A subscription is either an ordinary content filter or a
/// location-dependent template (paper Sec. 5).
using SubscriptionSpec = std::variant<filter::Filter, location::LdSpec>;

[[nodiscard]] inline bool is_location_dependent(const SubscriptionSpec& s) {
  return std::holds_alternative<location::LdSpec>(s);
}

// ---------------- data plane ----------------

struct PublishMsg {
  filter::Notification n;
};

struct DeliverMsg {
  SubKey key;
  StampedNotification sn;
};

// ---------------- admin plane ----------------

/// Upsert of a forwarded filter: installs or replaces the entry (and its
/// serving tags) for this filter at the receiving side of the link.
struct SubscribeMsg {
  filter::Filter f;
  std::set<SubKey> tags;
};

/// Removes the entry for this filter.
struct UnsubscribeMsg {
  filter::Filter f;
};

struct AdvertiseMsg {
  AdvId id;
  filter::Filter f;
};

struct UnadvertiseMsg {
  AdvId id;
};

// ---------------- relocation plane (paper Sec. 4) ----------------

/// The re-issued subscription of a roaming client, sent by the new
/// border broker. Propagates like a subscription until a broker finds
/// state serving `key` (or covering `f`) in another direction — the
/// junction — which answers with FetchMsg.
struct RelocateSubMsg {
  SubKey key;
  filter::Filter f;
  std::uint64_t epoch = 0;     // increments per reconnect
  std::uint64_t last_seq = 0;  // last sequence number the client received
};

/// Travels from the junction along the old delivery path to the old
/// border broker, re-pointing per-key state as it goes.
struct FetchMsg {
  SubKey key;
  filter::Filter f;
  std::uint64_t epoch = 0;
  std::uint64_t last_seq = 0;
};

/// Uncover request of the two-phase moveout protocol: the sender is
/// about to prune the mover's filter `f` (serving `key`) from its
/// routing-table entry for this link, and the receiver — the next broker
/// down the old path — must first re-expose every subscription `f`
/// covers (force-subscribing them back to the sender), then answer with
/// ReExposeAckMsg. FIFO ordering guarantees the re-exposures are
/// installed at the sender before the ack arrives, so the prune can
/// never orphan a covered bystander.
struct ReExposeMsg {
  SubKey key;
  filter::Filter f;
  std::uint64_t epoch = 0;
};

/// Ack of a ReExposeMsg: every covered subscription has been re-exposed
/// (and, by FIFO, installed); the pending prune may execute.
struct ReExposeAckMsg {
  SubKey key;
  std::uint64_t epoch = 0;
};

/// The virtual counterpart's buffered notifications, routed back along
/// the breadcrumbs laid by RelocateSubMsg and FetchMsg.
struct ReplayMsg {
  SubKey key;
  std::uint64_t epoch = 0;
  std::vector<StampedNotification> batch;
  /// Notifications lost to bounded buffering (0 = complete replay).
  std::uint64_t truncated = 0;
  /// Sequence number the new border broker continues stamping from.
  std::uint64_t next_seq = 0;
};

// ---------------- location plane (paper Sec. 5) ----------------

/// Installs location-dependent state at the receiving broker. `hop` is
/// the paper's filter index i of Fig. 6: the border broker holds F_1 and
/// forwards with hop = 2, and so on; the client-side filter is F_0.
struct LdSubscribeMsg {
  SubKey key;
  location::LdSpec spec;
  LocationId loc;
  std::uint32_t hop = 1;
};

struct LdUnsubscribeMsg {
  SubKey key;
};

/// A location change, forwarded hop by hop until a broker's concrete
/// location set is unchanged (then all farther sets are unchanged too —
/// BFS balls compose, see LocationGraph). `extra_steps` widens every
/// hop's ball uniformly: the pre-subscribe extension uses it while the
/// consumer is disconnected and its possible locations keep spreading
/// (paper Sec. 6, "'pre-subscribe' to information at brokers at possible
/// next locations").
struct LdMoveMsg {
  SubKey key;
  LocationId loc;
  std::uint32_t hop = 1;
  std::uint64_t move_seq = 0;
  std::uint32_t extra_steps = 0;
};

// ---------------- client links ----------------

/// Sent by a client upon (re-)connecting to a border broker. For
/// re-subscriptions the client reports its last received sequence number
/// per subscription — this is the paper's "(C, F, 123)" (Sec. 4.1).
struct ClientHelloMsg {
  struct Resub {
    SubKey key;
    SubscriptionSpec spec;
    std::uint64_t epoch = 0;
    std::uint64_t last_seq = 0;
    LocationId loc;  // current location, for location-dependent specs
  };
  ClientId client;
  std::vector<Resub> resubs;
};

/// Graceful sign-off: the border broker releases all state immediately
/// (the relocation protocol never requires this — Sec. 4.1 "no explicit
/// MoveOut or un-subscribe at the old location should be needed" — but
/// baselines and clean shutdown use it).
struct ClientByeMsg {
  ClientId client;
};

struct ClientSubscribeMsg {
  SubKey key;
  SubscriptionSpec spec;
  LocationId loc;  // for location-dependent specs
};

struct ClientUnsubscribeMsg {
  SubKey key;
};

struct ClientPublishMsg {
  filter::Notification n;
};

struct ClientAdvertiseMsg {
  AdvId id;
  filter::Filter f;
};

struct ClientUnadvertiseMsg {
  AdvId id;
};

/// Logical move of the client (paper Sec. 5): updates every
/// location-dependent subscription of this client.
struct ClientMoveMsg {
  ClientId client;
  LocationId loc;
};

using Message =
    std::variant<PublishMsg, DeliverMsg, SubscribeMsg, UnsubscribeMsg,
                 AdvertiseMsg, UnadvertiseMsg, RelocateSubMsg, FetchMsg,
                 ReExposeMsg, ReExposeAckMsg,
                 ReplayMsg, LdSubscribeMsg, LdUnsubscribeMsg, LdMoveMsg,
                 ClientHelloMsg, ClientByeMsg, ClientSubscribeMsg,
                 ClientUnsubscribeMsg, ClientPublishMsg, ClientAdvertiseMsg,
                 ClientUnadvertiseMsg, ClientMoveMsg>;

/// Counter class of a message (for MessageCounters).
[[nodiscard]] metrics::MessageClass message_class(const Message& m);

/// Short human-readable tag for traces.
[[nodiscard]] std::string message_name(const Message& m);

}  // namespace rebeca::net

#endif  // REBECA_NET_MESSAGE_HPP
