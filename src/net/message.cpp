#include "src/net/message.hpp"

namespace rebeca::net {

namespace {

struct ClassVisitor {
  using MC = metrics::MessageClass;
  MC operator()(const PublishMsg&) const { return MC::notification; }
  MC operator()(const DeliverMsg&) const { return MC::delivery; }
  MC operator()(const SubscribeMsg&) const { return MC::subscription_admin; }
  MC operator()(const UnsubscribeMsg&) const { return MC::subscription_admin; }
  MC operator()(const AdvertiseMsg&) const { return MC::advertisement_admin; }
  MC operator()(const UnadvertiseMsg&) const { return MC::advertisement_admin; }
  MC operator()(const RelocateSubMsg&) const { return MC::relocation_control; }
  MC operator()(const FetchMsg&) const { return MC::relocation_control; }
  MC operator()(const ReExposeMsg&) const { return MC::reexpose; }
  MC operator()(const ReExposeAckMsg&) const { return MC::reexpose; }
  MC operator()(const ReplayMsg&) const { return MC::replay; }
  MC operator()(const LdSubscribeMsg&) const { return MC::location_update; }
  MC operator()(const LdUnsubscribeMsg&) const { return MC::location_update; }
  MC operator()(const LdMoveMsg&) const { return MC::location_update; }
  MC operator()(const ClientHelloMsg&) const { return MC::client_control; }
  MC operator()(const ClientByeMsg&) const { return MC::client_control; }
  MC operator()(const ClientSubscribeMsg&) const { return MC::client_control; }
  MC operator()(const ClientUnsubscribeMsg&) const { return MC::client_control; }
  MC operator()(const ClientPublishMsg&) const { return MC::notification; }
  MC operator()(const ClientAdvertiseMsg&) const { return MC::client_control; }
  MC operator()(const ClientUnadvertiseMsg&) const { return MC::client_control; }
  MC operator()(const ClientMoveMsg&) const { return MC::location_update; }
};

struct NameVisitor {
  const char* operator()(const PublishMsg&) const { return "publish"; }
  const char* operator()(const DeliverMsg&) const { return "deliver"; }
  const char* operator()(const SubscribeMsg&) const { return "subscribe"; }
  const char* operator()(const UnsubscribeMsg&) const { return "unsubscribe"; }
  const char* operator()(const AdvertiseMsg&) const { return "advertise"; }
  const char* operator()(const UnadvertiseMsg&) const { return "unadvertise"; }
  const char* operator()(const RelocateSubMsg&) const { return "relocate-sub"; }
  const char* operator()(const FetchMsg&) const { return "fetch"; }
  const char* operator()(const ReExposeMsg&) const { return "re-expose"; }
  const char* operator()(const ReExposeAckMsg&) const { return "re-expose-ack"; }
  const char* operator()(const ReplayMsg&) const { return "replay"; }
  const char* operator()(const LdSubscribeMsg&) const { return "ld-subscribe"; }
  const char* operator()(const LdUnsubscribeMsg&) const { return "ld-unsubscribe"; }
  const char* operator()(const LdMoveMsg&) const { return "ld-move"; }
  const char* operator()(const ClientHelloMsg&) const { return "client-hello"; }
  const char* operator()(const ClientByeMsg&) const { return "client-bye"; }
  const char* operator()(const ClientSubscribeMsg&) const { return "client-subscribe"; }
  const char* operator()(const ClientUnsubscribeMsg&) const { return "client-unsubscribe"; }
  const char* operator()(const ClientPublishMsg&) const { return "client-publish"; }
  const char* operator()(const ClientAdvertiseMsg&) const { return "client-advertise"; }
  const char* operator()(const ClientUnadvertiseMsg&) const { return "client-unadvertise"; }
  const char* operator()(const ClientMoveMsg&) const { return "client-move"; }
};

}  // namespace

metrics::MessageClass message_class(const Message& m) {
  return std::visit(ClassVisitor{}, m);
}

std::string message_name(const Message& m) {
  return std::visit(NameVisitor{}, m);
}

}  // namespace rebeca::net
