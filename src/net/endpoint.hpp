// Endpoint: anything a Link can terminate at (a broker or a client).
#ifndef REBECA_NET_ENDPOINT_HPP
#define REBECA_NET_ENDPOINT_HPP

#include <string>

#include "src/net/message.hpp"

namespace rebeca::net {

class Link;

class Endpoint {
 public:
  Endpoint() = default;
  Endpoint(const Endpoint&) = delete;
  Endpoint& operator=(const Endpoint&) = delete;
  virtual ~Endpoint() = default;

  /// A message arrived over `from`. The handler runs atomically in
  /// virtual time (the paper's atomic routing decision, Sec. 2.2).
  virtual void handle_message(Link& from, const Message& msg) = 0;

  /// The link went down (disconnection). Both endpoints are informed;
  /// in-flight messages on the link are lost.
  virtual void handle_link_down(Link& link) { (void)link; }

  [[nodiscard]] virtual std::string endpoint_name() const = 0;
};

}  // namespace rebeca::net

#endif  // REBECA_NET_ENDPOINT_HPP
