#include "src/net/link.hpp"

#include <memory>
#include <utility>

#include "src/util/assert.hpp"

namespace rebeca::net {

Link::Link(LinkId id, sim::Simulation& sim, Endpoint& a, Endpoint& b,
           sim::DelayModel delay, metrics::MessageCounters* counters)
    : id_(id), sim_(sim), a_(&a), b_(&b), delay_(delay), counters_(counters) {
  REBECA_ASSERT(&a != &b, "link endpoints must differ");
}

Endpoint& Link::peer_of(const Endpoint& e) const {
  REBECA_ASSERT(connects(e), "endpoint not on this link");
  return &e == a_ ? *b_ : *a_;
}

void Link::send(const Endpoint& from, Message msg) {
  REBECA_ASSERT(connects(from), "sender not on this link");
  if (!up_) {
    if (counters_ != nullptr) counters_->add(metrics::MessageClass::dropped);
    return;
  }
  if (counters_ != nullptr) counters_->add(message_class(msg));

  const std::size_t dir = (&from == a_) ? 0 : 1;
  const sim::Duration delay = delay_.sample(sim_.rng());
  sim::TimePoint arrival = sim_.now() + delay;
  if (arrival < last_arrival_[dir]) arrival = last_arrival_[dir];  // FIFO
  last_arrival_[dir] = arrival;

  Endpoint* dest = (dir == 0) ? b_ : a_;
  // Share the payload; delivery copies nothing. The generation check at
  // delivery time drops messages that were in flight when the link was
  // cut.
  auto payload = std::make_shared<Message>(std::move(msg));
  const std::uint64_t gen = generation_;
  // Fire-and-forget: delivery events are never cancelled (the generation
  // check below handles link cuts), so skip the EventHandle allocation.
  sim_.post_at(arrival, [this, dest, payload, gen] {
    if (!up_ || gen != generation_) {
      if (counters_ != nullptr) counters_->add(metrics::MessageClass::dropped);
      return;
    }
    dest->handle_message(*this, *payload);
  });
}

void Link::set_up(bool up) {
  if (up == up_) return;
  up_ = up;
  if (!up) {
    ++generation_;
    a_->handle_link_down(*this);
    b_->handle_link_down(*this);
  }
}

}  // namespace rebeca::net
