#include "src/net/link.hpp"

#include <utility>

#include "src/util/assert.hpp"

namespace rebeca::net {

Link::Link(LinkId id, sim::Executor& sim, Endpoint& a, Endpoint& b,
           sim::DelayModel delay, metrics::MessageCounters* counters)
    : id_(id), delay_(delay) {
  REBECA_ASSERT(&a != &b, "link endpoints must differ");
  sides_[0] = Side{.ep = &a, .exec = &sim, .counters = counters};
  sides_[1] = Side{.ep = &b, .exec = &sim, .counters = counters};
  sides_[0].affinity.bind(&sim);
  sides_[1].affinity.bind(&sim);
}

Link::Link(LinkId id, sim::Executor& a_exec, Endpoint& a,
           metrics::MessageCounters* a_counters, sim::Executor& b_exec,
           Endpoint& b, metrics::MessageCounters* b_counters,
           sim::DelayModel delay)
    : id_(id), delay_(delay), deferred_peer_notify_(true) {
  REBECA_ASSERT(&a != &b, "link endpoints must differ");
  REBECA_ASSERT(delay_.lower_bound() > 0,
                "shard-aware links need a strictly positive minimum delay "
                "(the cross-shard lookahead)");
  sides_[0] = Side{.ep = &a, .exec = &a_exec, .counters = a_counters};
  sides_[1] = Side{.ep = &b, .exec = &b_exec, .counters = b_counters};
  sides_[0].affinity.bind(&a_exec);
  sides_[1].affinity.bind(&b_exec);
}

std::size_t Link::index_of(const Endpoint& e) const {
  REBECA_ASSERT(connects(e), "endpoint not on this link");
  return &e == sides_[0].ep ? 0 : 1;
}

Endpoint& Link::peer_of(const Endpoint& e) const {
  return *sides_[1 - index_of(e)].ep;
}

void Link::send(const Endpoint& from, Message msg) {
  const std::size_t si = index_of(from);
  Side& s = sides_[si];
  REBECA_LANE_ASSERT(s.affinity, "Link", "send");
  if (!s.up) {
    if (s.counters != nullptr) s.counters->add(metrics::MessageClass::dropped);
    return;
  }
  if (s.counters != nullptr) s.counters->add(message_class(msg));

  // Delay draws come from the *sending* side's executor: the classic
  // engine's one global stream, or the sender lane's own stream under
  // sharding (whose draw order is shard-count invariant).
  const sim::Duration delay = delay_.sample(s.exec->rng());
  sim::TimePoint arrival = s.exec->now() + delay;
  if (arrival < s.next_arrival) arrival = s.next_arrival;  // FIFO
  s.next_arrival = arrival;

  const std::size_t di = 1 - si;
  // Classic links may be cut and revived; a generation snapshot drops
  // deliveries that were in flight at a cut. Shard-aware links never
  // read the peer side here (it belongs to another lane): they are
  // cut-once, so the destination's up flag alone decides.
  const std::uint64_t gen = deferred_peer_notify_ ? 0 : sides_[di].gen;
  // Share the payload; delivery copies nothing. Fire-and-forget: the
  // delivery event is never cancelled, so no EventHandle either.
  PayloadRef payload = PayloadRef::make(std::move(msg));
  // rebeca-lint: allow(LANE-ESCAPE, the Link outlives all in-flight events; the handler touches only sides_[di], owned by the destination lane and guarded by REBECA_LANE_ASSERT)
  sides_[di].exec->post_at(arrival, [this, di, gen,
                                     payload = std::move(payload)] {
    Side& d = sides_[di];
    REBECA_LANE_ASSERT(d.affinity, "Link", "deliver");
    if (!d.up || (!deferred_peer_notify_ && gen != d.gen)) {
      if (d.counters != nullptr) d.counters->add(metrics::MessageClass::dropped);
      return;
    }
    d.ep->handle_message(*this, *payload);
  });
}

void Link::down_side(std::size_t i) {
  Side& s = sides_[i];
  REBECA_LANE_ASSERT(s.affinity, "Link", "down_side");
  if (!s.up) return;
  s.up = false;
  ++s.gen;
  s.ep->handle_link_down(*this);
}

void Link::cut(const Endpoint& by) {
  if (!deferred_peer_notify_) {
    set_up(false);
    return;
  }
  const std::size_t si = index_of(by);
  if (!sides_[si].up) return;
  // The initiator notices instantly (it pulled the plug)...
  const sim::TimePoint cut_now = sides_[si].exec->now();
  down_side(si);
  // ...the peer one minimum link latency later — the same delay a
  // sign-off message would take, and never less than the lookahead, so
  // the notification is a legal cross-shard event. Messages the peer
  // sends in the interim die at the initiator's down side.
  const std::size_t di = 1 - si;
  sides_[di].exec->post_at(
      cut_now + delay_.lower_bound(),
      // rebeca-lint: allow(LANE-ESCAPE, the Link outlives all in-flight events; down_side(di) touches only the destination side's state, owned by the target lane)
      [this, di] { down_side(di); });
}

void Link::set_up(bool up) {
  REBECA_ASSERT(!deferred_peer_notify_,
                "shard-aware links are cut via cut(initiator)");
  if (up == this->up()) return;
  sides_[0].up = sides_[1].up = up;
  if (!up) {
    ++sides_[0].gen;
    ++sides_[1].gen;
    sides_[0].ep->handle_link_down(*this);
    sides_[1].ep->handle_link_down(*this);
  }
}

}  // namespace rebeca::net
