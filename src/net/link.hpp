// Point-to-point FIFO links (paper Sec. 2.1).
//
// A Link connects two endpoints through the simulator. Per direction it
// enforces FIFO delivery even under stochastic delays: an arrival time
// is clamped to be no earlier than the previous arrival in the same
// direction. Taking a link down drops all in-flight messages (that is
// what disconnection means for a roaming client) and notifies both
// endpoints.
#ifndef REBECA_NET_LINK_HPP
#define REBECA_NET_LINK_HPP

#include <array>

#include "src/net/endpoint.hpp"
#include "src/net/message.hpp"
#include "src/sim/delay_model.hpp"
#include "src/sim/simulation.hpp"
#include "src/metrics/counters.hpp"
#include "src/util/domain_ids.hpp"

namespace rebeca::net {

class Link {
 public:
  Link(LinkId id, sim::Simulation& sim, Endpoint& a, Endpoint& b,
       sim::DelayModel delay, metrics::MessageCounters* counters = nullptr);

  Link(const Link&) = delete;
  Link& operator=(const Link&) = delete;

  [[nodiscard]] LinkId id() const { return id_; }
  [[nodiscard]] bool up() const { return up_; }
  [[nodiscard]] const sim::DelayModel& delay_model() const { return delay_; }

  [[nodiscard]] Endpoint& peer_of(const Endpoint& e) const;
  [[nodiscard]] bool connects(const Endpoint& e) const {
    return &e == a_ || &e == b_;
  }

  /// Sends `msg` from endpoint `from` to the peer. If the link is down
  /// the message is dropped (and counted).
  void send(const Endpoint& from, Message msg);

  /// Takes the link down: in-flight messages are lost, both endpoints
  /// get handle_link_down. Bringing it back up resumes normal delivery.
  void set_up(bool up);

 private:
  LinkId id_;
  sim::Simulation& sim_;
  Endpoint* a_;
  Endpoint* b_;
  sim::DelayModel delay_;
  metrics::MessageCounters* counters_;
  bool up_ = true;
  /// Increments when the link goes down; deliveries scheduled under an
  /// older generation are discarded (they were in flight at the cut).
  std::uint64_t generation_ = 0;
  /// Per direction (index 0: a→b, 1: b→a): last scheduled arrival.
  std::array<sim::TimePoint, 2> last_arrival_{0, 0};
};

}  // namespace rebeca::net

#endif  // REBECA_NET_LINK_HPP
