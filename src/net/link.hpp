// Point-to-point FIFO links (paper Sec. 2.1).
//
// A Link connects two endpoints through the simulator. Per direction it
// enforces FIFO delivery even under stochastic delays: an arrival time
// is clamped to be no earlier than the previous arrival in the same
// direction. Cutting a link drops all in-flight messages (that is what
// disconnection means for a roaming client) and notifies both endpoints.
//
// Link state is split per *side* so the two endpoints can live on
// different shards of the sharded engine: each side owns its executor,
// RNG-backed delay draws, outgoing FIFO clamp, up/generation view and
// message counters, and is only ever touched from its own lane. In the
// classic single-executor construction both sides share one executor
// and one counter set, and cuts notify both endpoints synchronously —
// bit-identical to the historical behaviour. In the shard-aware
// construction the cut initiator's side goes down immediately while the
// peer learns via a deferred event one minimum link delay later (the
// same latency a sign-off message would take), which keeps every state
// touch lane-confined.
#ifndef REBECA_NET_LINK_HPP
#define REBECA_NET_LINK_HPP

#include <array>
#include <cstdint>

#include "src/net/endpoint.hpp"
#include "src/net/message.hpp"
#include "src/net/message_pool.hpp"
#include "src/sim/delay_model.hpp"
#include "src/sim/executor.hpp"
#include "src/sim/lane_check.hpp"
#include "src/metrics/counters.hpp"
#include "src/util/domain_ids.hpp"

namespace rebeca::net {

class Link {
 public:
  /// Classic construction: both sides run on `sim`, share `counters`,
  /// and cut() tears both sides down synchronously.
  Link(LinkId id, sim::Executor& sim, Endpoint& a, Endpoint& b,
       sim::DelayModel delay, metrics::MessageCounters* counters = nullptr);

  /// Shard-aware construction: each side names the executor (lane) that
  /// runs its endpoint and the counter set it accounts to. Peer
  /// link-down notification is deferred by the link's minimum delay.
  Link(LinkId id, sim::Executor& a_exec, Endpoint& a,
       metrics::MessageCounters* a_counters, sim::Executor& b_exec,
       Endpoint& b, metrics::MessageCounters* b_counters,
       sim::DelayModel delay);

  Link(const Link&) = delete;
  Link& operator=(const Link&) = delete;

  [[nodiscard]] LinkId id() const { return id_; }
  [[nodiscard]] bool up() const { return sides_[0].up && sides_[1].up; }
  [[nodiscard]] const sim::DelayModel& delay_model() const { return delay_; }

  [[nodiscard]] Endpoint& peer_of(const Endpoint& e) const;
  [[nodiscard]] bool connects(const Endpoint& e) const {
    return &e == sides_[0].ep || &e == sides_[1].ep;
  }

  /// Sends `msg` from endpoint `from` to the peer. If the link is down
  /// the message is dropped (and counted).
  void send(const Endpoint& from, Message msg);

  /// Cuts the link, initiated by endpoint `by`: in-flight messages are
  /// lost, both endpoints get handle_link_down (the peer's notification
  /// is deferred on shard-aware links). A cut link stays down.
  void cut(const Endpoint& by);

  /// Classic-only synchronous toggle (kept for the historical API).
  /// Bringing a link back up resumes normal delivery.
  void set_up(bool up);

 private:
  struct Side {
    Endpoint* ep = nullptr;
    sim::Executor* exec = nullptr;
    metrics::MessageCounters* counters = nullptr;
    /// FIFO clamp for the direction this side *sends* on: the latest
    /// arrival already scheduled toward the peer.
    sim::TimePoint next_arrival = 0;
    /// This side's view of the link. Only its own lane writes it.
    bool up = true;
    /// Increments when this side goes down; classic-mode deliveries
    /// scheduled under an older generation are discarded (they were in
    /// flight at the cut).
    std::uint64_t gen = 0;
    /// Debug-only: the lane that owns this side (lane_check.hpp).
    sim::LaneAffinity affinity{};
  };

  [[nodiscard]] std::size_t index_of(const Endpoint& e) const;
  void down_side(std::size_t i);

  LinkId id_;
  sim::DelayModel delay_;
  /// Shard-aware links defer the peer's link-down notification; classic
  /// links tear down synchronously (and may come back up).
  bool deferred_peer_notify_ = false;
  std::array<Side, 2> sides_;
};

}  // namespace rebeca::net

#endif  // REBECA_NET_LINK_HPP
