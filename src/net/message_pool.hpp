// Pooled, intrusively refcounted message payloads.
//
// Link delivery shares one immutable payload between the send site and
// the in-flight delivery closure. The original implementation allocated
// a std::shared_ptr<Message> per message — one malloc plus a full
// control block (weak count, deleter) on the hottest path in the
// simulator. PayloadRef replaces it with an intrusive refcount embedded
// in a pooled block: per-thread free lists recycle blocks without locks,
// and the atomic count lets a payload be created on one shard's thread
// and released on another (cross-shard handoff in the sharded engine).
#ifndef REBECA_NET_MESSAGE_POOL_HPP
#define REBECA_NET_MESSAGE_POOL_HPP

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "src/net/message.hpp"

namespace rebeca::net {

class PayloadRef {
 public:
  PayloadRef() = default;

  /// Wraps `msg` in a pooled block with refcount 1.
  static PayloadRef make(Message msg) {
    Block* b = Cache::local().pop();
    if (b == nullptr) b = new Block;
    b->refs.store(1, std::memory_order_relaxed);
    b->msg = std::move(msg);
    return PayloadRef(b);
  }

  PayloadRef(const PayloadRef& o) : block_(o.block_) {
    if (block_ != nullptr) block_->refs.fetch_add(1, std::memory_order_relaxed);
  }
  PayloadRef(PayloadRef&& o) noexcept : block_(o.block_) { o.block_ = nullptr; }
  PayloadRef& operator=(const PayloadRef& o) {
    if (this != &o) {
      reset();
      block_ = o.block_;
      if (block_ != nullptr) block_->refs.fetch_add(1, std::memory_order_relaxed);
    }
    return *this;
  }
  PayloadRef& operator=(PayloadRef&& o) noexcept {
    if (this != &o) {
      reset();
      block_ = o.block_;
      o.block_ = nullptr;
    }
    return *this;
  }
  ~PayloadRef() { reset(); }

  void reset() {
    if (block_ == nullptr) return;
    // acq_rel: the releasing thread's writes to the payload must be
    // visible to whichever thread recycles the block.
    if (block_->refs.fetch_sub(1, std::memory_order_acq_rel) == 1) {
      Cache::local().push(block_);
    }
    block_ = nullptr;
  }

  [[nodiscard]] const Message& operator*() const { return block_->msg; }
  [[nodiscard]] const Message* operator->() const { return &block_->msg; }
  [[nodiscard]] explicit operator bool() const { return block_ != nullptr; }

 private:
  struct Block {
    std::atomic<std::uint32_t> refs{0};
    Message msg;
  };

  /// Per-thread block cache. Blocks released on a different thread than
  /// they were acquired on simply enter the releasing thread's cache —
  /// no lock, no contention, and the cache bound keeps a skewed
  /// producer/consumer split from hoarding memory.
  class Cache {
   public:
    static Cache& local() {
      static thread_local Cache cache;
      return cache;
    }

    Block* pop() {
      if (blocks_.empty()) return nullptr;
      Block* b = blocks_.back();
      blocks_.pop_back();
      return b;
    }

    void push(Block* b) {
      if (blocks_.size() >= kMaxCached) {
        delete b;
        return;
      }
      b->msg = Message{};  // release payload memory, keep the block
      blocks_.push_back(b);
    }

    ~Cache() {
      for (Block* b : blocks_) delete b;
    }

   private:
    static constexpr std::size_t kMaxCached = 4096;
    std::vector<Block*> blocks_;
  };

  explicit PayloadRef(Block* b) : block_(b) {}

  Block* block_ = nullptr;
};

}  // namespace rebeca::net

#endif  // REBECA_NET_MESSAGE_POOL_HPP
