// Broker-network topologies.
//
// The paper's communication topology is "a graph, which is assumed to be
// acyclic and connected" (Sec. 2.1) — a tree. Topology is a pure
// description (no processes, no links); the Overlay instantiates it.
// Builders cover the shapes the experiments need: chains (the Fig. 6
// analysis setting), stars, balanced trees and seeded random trees.
#ifndef REBECA_NET_TOPOLOGY_HPP
#define REBECA_NET_TOPOLOGY_HPP

#include <cstddef>
#include <utility>
#include <vector>

#include "src/util/rng.hpp"

namespace rebeca::net {

class Topology {
 public:
  /// Brokers 0..n-1 in a line: 0 - 1 - 2 - ... - (n-1).
  static Topology chain(std::size_t n);

  /// Broker 0 in the middle, 1..n-1 attached to it.
  static Topology star(std::size_t n);

  /// Complete tree with the given fanout; depth 0 is a single broker.
  static Topology balanced_tree(std::size_t depth, std::size_t fanout);

  /// Random tree over n brokers: node i attaches to a uniformly chosen
  /// earlier node. Deterministic given the RNG state.
  static Topology random_tree(std::size_t n, util::Rng& rng);

  [[nodiscard]] std::size_t broker_count() const { return broker_count_; }
  [[nodiscard]] const std::vector<std::pair<std::size_t, std::size_t>>& edges() const {
    return edges_;
  }
  [[nodiscard]] const std::vector<std::size_t>& neighbors(std::size_t broker) const;

  /// Connected and acyclic (edge count == n-1 plus reachability).
  [[nodiscard]] bool valid() const;

  /// Hop distances from `root` to every broker (root itself is 0).
  [[nodiscard]] std::vector<std::size_t> distances_from(std::size_t root) const;

  /// The unique tree path from `a` to `b`, inclusive of both.
  [[nodiscard]] std::vector<std::size_t> path(std::size_t a, std::size_t b) const;

  [[nodiscard]] std::size_t diameter() const;

 private:
  Topology(std::size_t broker_count,
           std::vector<std::pair<std::size_t, std::size_t>> edges);

  std::size_t broker_count_;
  std::vector<std::pair<std::size_t, std::size_t>> edges_;
  std::vector<std::vector<std::size_t>> adjacency_;
};

}  // namespace rebeca::net

#endif  // REBECA_NET_TOPOLOGY_HPP
