// The delivery record: one notification as a consumer received it.
//
// Lives in metrics/ (not client/) because it is the unit the delivery-log
// checkers and report aggregation consume — the QoS definitions of
// Sec. 3.2/3.3 are statements about sequences of these records, not about
// the client class. Keeping it below client/ in the layering also keeps
// checkers.hpp from reaching up the module DAG (rebeca-lint LAYER-DAG).
#ifndef REBECA_METRICS_DELIVERY_HPP
#define REBECA_METRICS_DELIVERY_HPP

#include <cstdint>

#include "src/filter/notification.hpp"
#include "src/sim/time.hpp"

namespace rebeca::metrics {

/// A delivered notification as the application sees it.
struct Delivery {
  std::uint32_t sub = 0;
  filter::Notification notification;
  std::uint64_t seq = 0;
  sim::TimePoint delivered_at = 0;
};

}  // namespace rebeca::metrics

#endif  // REBECA_METRICS_DELIVERY_HPP
