#include "src/metrics/checkers.hpp"

#include <algorithm>

namespace rebeca::metrics {

CompletenessReport check_exactly_once(
    const std::vector<Delivery>& deliveries,
    const std::vector<NotificationId>& expected_ids) {
  CompletenessReport report;
  report.expected = expected_ids.size();
  report.delivered = deliveries.size();

  std::map<NotificationId, std::uint64_t> seen;
  for (const auto& d : deliveries) seen[d.notification.id()] += 1;
  for (const auto& [id, count] : seen) {
    if (count > 1) report.duplicates += count - 1;
  }
  for (const auto& id : expected_ids) {
    if (seen.find(id) == seen.end()) {
      ++report.missing;
      report.missing_ids.push_back(id);
    }
  }
  return report;
}

FifoReport check_sender_fifo(const std::vector<Delivery>& deliveries) {
  FifoReport report;
  std::map<ClientId, std::uint64_t> last;
  for (const auto& d : deliveries) {
    auto& prev = last[d.notification.producer()];
    ++report.checked;
    if (d.notification.producer_seq() <= prev) ++report.violations;
    prev = std::max(prev, d.notification.producer_seq());
  }
  return report;
}

BlackoutReport analyze_blackout(const std::vector<Delivery>& deliveries,
                                sim::TimePoint reference) {
  BlackoutReport report;
  const Delivery* first = nullptr;
  for (const auto& d : deliveries) {
    if (d.notification.publish_time() < reference) continue;
    if (first == nullptr ||
        d.notification.publish_time() < first->notification.publish_time()) {
      first = &d;
    }
  }
  if (first != nullptr) {
    report.any_delivery = true;
    report.first_published_offset = first->notification.publish_time() - reference;
    report.first_delivered_offset = first->delivered_at - reference;
  }
  return report;
}

}  // namespace rebeca::metrics
