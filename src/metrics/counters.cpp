#include "src/metrics/counters.hpp"

namespace rebeca::metrics {

const char* message_class_name(MessageClass c) {
  switch (c) {
    case MessageClass::notification: return "notification";
    case MessageClass::delivery: return "delivery";
    case MessageClass::subscription_admin: return "sub-admin";
    case MessageClass::advertisement_admin: return "adv-admin";
    case MessageClass::relocation_control: return "relocation";
    case MessageClass::reexpose: return "reexpose";
    case MessageClass::replay: return "replay";
    case MessageClass::location_update: return "loc-update";
    case MessageClass::client_control: return "client-ctl";
    case MessageClass::dropped: return "dropped";
    case MessageClass::kCount: break;
  }
  return "?";
}

std::ostream& operator<<(std::ostream& os, const MessageCounters& mc) {
  os << "{";
  bool first = true;
  for (std::size_t i = 0; i < static_cast<std::size_t>(MessageClass::kCount); ++i) {
    const auto c = static_cast<MessageClass>(i);
    if (mc.count(c) == 0) continue;
    if (!first) os << ", ";
    os << message_class_name(c) << "=" << mc.count(c);
    first = false;
  }
  return os << "}";
}

}  // namespace rebeca::metrics
