// Message accounting.
//
// Figure 9 of the paper reports "the total number of messages
// (notifications and administrative messages)" — so every Link::send
// increments a class-labelled counter here. Counters can be snapshotted
// at virtual-time checkpoints to produce the cumulative series the
// figure plots.
#ifndef REBECA_METRICS_COUNTERS_HPP
#define REBECA_METRICS_COUNTERS_HPP

#include <array>
#include <cstdint>
#include <ostream>

namespace rebeca::metrics {

enum class MessageClass : std::size_t {
  notification = 0,   // published notifications forwarded broker-to-broker
  delivery,           // notifications delivered over a client link
  subscription_admin, // sub/unsub forwarding between brokers
  advertisement_admin,// adv/unadv forwarding between brokers
  relocation_control, // relocation subscriptions + fetch requests
  reexpose,           // uncover-before-prune re-expose requests + acks
  replay,             // buffered-notification replay batches
  location_update,    // logical-mobility location change propagation
  client_control,     // hello/bye/sub/unsub/move on client links
  dropped,            // messages lost to a down link
  kCount,
};

const char* message_class_name(MessageClass c);

class MessageCounters {
 public:
  void add(MessageClass c, std::uint64_t n = 1) {
    counts_[static_cast<std::size_t>(c)] += n;
  }

  [[nodiscard]] std::uint64_t count(MessageClass c) const {
    return counts_[static_cast<std::size_t>(c)];
  }

  /// All message classes that cross links, except drops.
  [[nodiscard]] std::uint64_t total() const {
    std::uint64_t sum = 0;
    for (std::size_t i = 0; i + 1 < counts_.size(); ++i) sum += counts_[i];
    return sum;
  }

  /// Administrative traffic only (everything except notification
  /// forwarding and deliveries).
  [[nodiscard]] std::uint64_t administrative() const {
    return total() - count(MessageClass::notification) -
           count(MessageClass::delivery);
  }

  void reset() { counts_.fill(0); }

  friend std::ostream& operator<<(std::ostream& os, const MessageCounters& mc);

 private:
  std::array<std::uint64_t, static_cast<std::size_t>(MessageClass::kCount)>
      counts_{};
};

}  // namespace rebeca::metrics

#endif  // REBECA_METRICS_COUNTERS_HPP
