// Delivery-log checkers: executable versions of the paper's QoS
// definitions (Sec. 3.2 completeness & ordering, Sec. 3.3 epochs).
#ifndef REBECA_METRICS_CHECKERS_HPP
#define REBECA_METRICS_CHECKERS_HPP

#include <cstdint>
#include <map>
#include <set>
#include <vector>

#include "src/metrics/delivery.hpp"
#include "src/util/domain_ids.hpp"

namespace rebeca::metrics {

/// Result of comparing what a consumer received against what it should
/// have received.
struct CompletenessReport {
  std::uint64_t expected = 0;
  std::uint64_t delivered = 0;
  std::uint64_t missing = 0;
  std::uint64_t duplicates = 0;
  std::vector<NotificationId> missing_ids;

  [[nodiscard]] bool exactly_once() const {
    return missing == 0 && duplicates == 0;
  }
};

/// Exactly-once check: `expected_ids` is what the workload published (and
/// matched the subscription); deliveries are the client's log.
[[nodiscard]] CompletenessReport check_exactly_once(
    const std::vector<Delivery>& deliveries,
    const std::vector<NotificationId>& expected_ids);

struct FifoReport {
  std::uint64_t checked = 0;
  std::uint64_t violations = 0;

  [[nodiscard]] bool ok() const { return violations == 0; }
};

/// Sender-FIFO: per producer, producer sequence numbers must appear in
/// increasing order in the delivery log (gaps allowed — that is
/// completeness' business).
[[nodiscard]] FifoReport check_sender_fifo(
    const std::vector<Delivery>& deliveries);

/// Blackout analysis for Fig. 3: how long after a reference instant did
/// the first delivery (publish-stamped later than the instant) arrive?
struct BlackoutReport {
  bool any_delivery = false;
  /// publish-time offset of the first delivered notification published
  /// at/after the reference instant.
  sim::Duration first_published_offset = 0;
  /// delivery-time offset of that notification.
  sim::Duration first_delivered_offset = 0;
};

[[nodiscard]] BlackoutReport analyze_blackout(
    const std::vector<Delivery>& deliveries, sim::TimePoint reference);

}  // namespace rebeca::metrics

#endif  // REBECA_METRICS_CHECKERS_HPP
