// Domain-wide identifier types.
//
// These are shared by several modules (a Notification carries its
// producer's ClientId; routing tables key on SubKey; the location layer
// speaks LocationId), so they live below all of them.
#ifndef REBECA_UTIL_DOMAIN_IDS_HPP
#define REBECA_UTIL_DOMAIN_IDS_HPP

#include <cstdint>
#include <functional>
#include <ostream>

#include "src/util/ids.hpp"

namespace rebeca {

/// A broker node in the overlay graph.
using NodeId = util::StrongId<struct NodeIdTag>;

/// A point-to-point link (broker-broker or broker-client).
using LinkId = util::StrongId<struct LinkIdTag>;

/// A client process (producer and/or consumer).
using ClientId = util::StrongId<struct ClientIdTag>;

/// A logical location (a room, a street block, a cell).
using LocationId = util::StrongId<struct LocationIdTag>;

/// A producer-side advertisement.
using AdvId = util::StrongId<struct AdvIdTag, std::uint64_t>;

/// A published notification (globally unique).
using NotificationId = util::StrongId<struct NotificationIdTag, std::uint64_t>;

/// Identifies one subscription of one client, stable across roaming.
struct SubKey {
  ClientId client;
  std::uint32_t sub = 0;

  friend constexpr auto operator<=>(const SubKey&, const SubKey&) = default;

  friend std::ostream& operator<<(std::ostream& os, const SubKey& k) {
    return os << "c" << k.client << "/s" << k.sub;
  }
};

}  // namespace rebeca

namespace std {
template <>
struct hash<rebeca::SubKey> {
  size_t operator()(const rebeca::SubKey& k) const noexcept {
    return std::hash<std::uint32_t>{}(k.client.value()) * 1000003u ^
           std::hash<std::uint32_t>{}(k.sub);
  }
};
}  // namespace std

#endif  // REBECA_UTIL_DOMAIN_IDS_HPP
