// Strongly typed identifiers.
//
// The broker network juggles many integer-like identities (nodes, links,
// clients, subscriptions, locations, ...). Using raw integers invites
// silent cross-assignment bugs; a tagged wrapper makes every identity a
// distinct type with value semantics, ordering and hashing.
#ifndef REBECA_UTIL_IDS_HPP
#define REBECA_UTIL_IDS_HPP

#include <compare>
#include <cstdint>
#include <functional>
#include <limits>
#include <ostream>

namespace rebeca::util {

/// A strongly typed integer identifier. `Tag` only disambiguates types.
template <typename Tag, typename Rep = std::uint32_t>
class StrongId {
 public:
  using rep_type = Rep;

  constexpr StrongId() = default;
  constexpr explicit StrongId(Rep value) : value_(value) {}

  [[nodiscard]] constexpr Rep value() const { return value_; }
  [[nodiscard]] constexpr bool valid() const { return value_ != invalid_value(); }

  /// Sentinel for "no id".
  [[nodiscard]] static constexpr StrongId invalid() { return StrongId{}; }

  friend constexpr auto operator<=>(StrongId, StrongId) = default;

  friend std::ostream& operator<<(std::ostream& os, StrongId id) {
    if (!id.valid()) return os << "<invalid>";
    return os << id.value_;
  }

 private:
  static constexpr Rep invalid_value() { return std::numeric_limits<Rep>::max(); }
  Rep value_ = invalid_value();
};

}  // namespace rebeca::util

namespace std {
template <typename Tag, typename Rep>
struct hash<rebeca::util::StrongId<Tag, Rep>> {
  size_t operator()(rebeca::util::StrongId<Tag, Rep> id) const noexcept {
    return std::hash<Rep>{}(id.value());
  }
};
}  // namespace std

#endif  // REBECA_UTIL_IDS_HPP
