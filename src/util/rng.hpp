// Deterministic pseudo-random number generation.
//
// All stochastic behaviour in the simulator flows from these generators,
// seeded explicitly per scenario, so that every experiment is exactly
// reproducible from its seed. We avoid std::default_random_engine and the
// std distributions because their outputs are implementation-defined;
// the distributions below are portable and bit-stable.
#ifndef REBECA_UTIL_RNG_HPP
#define REBECA_UTIL_RNG_HPP

#include <cmath>
#include <cstdint>
#include <vector>

#include "src/util/assert.hpp"

namespace rebeca::util {

/// SplitMix64: used for seeding and cheap hashing-style mixing.
class SplitMix64 {
 public:
  explicit constexpr SplitMix64(std::uint64_t seed) : state_(seed) {}

  constexpr std::uint64_t next() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// xoshiro256**: the workhorse generator. Fast, high quality, tiny state.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed) {
    SplitMix64 sm(seed);
    for (auto& s : state_) s = sm.next();
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~0ULL; }

  result_type operator()() { return next(); }

  std::uint64_t next() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform integer in [lo, hi] (inclusive). Unbiased via rejection.
  std::uint64_t uniform_u64(std::uint64_t lo, std::uint64_t hi) {
    REBECA_ASSERT(lo <= hi, "uniform_u64 range [" << lo << "," << hi << "]");
    const std::uint64_t span = hi - lo;
    if (span == ~0ULL) return next();
    const std::uint64_t bound = span + 1;
    const std::uint64_t limit = (~0ULL) - ((~0ULL) % bound + 1) % bound;
    std::uint64_t draw = next();
    while (draw > limit) draw = next();
    return lo + draw % bound;
  }

  std::int64_t uniform_i64(std::int64_t lo, std::int64_t hi) {
    REBECA_ASSERT(lo <= hi, "uniform_i64 range");
    return lo + static_cast<std::int64_t>(
                    uniform_u64(0, static_cast<std::uint64_t>(hi - lo)));
  }

  /// Uniform double in [0, 1).
  double uniform01() {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

  double uniform_real(double lo, double hi) {
    REBECA_ASSERT(lo <= hi, "uniform_real range");
    return lo + (hi - lo) * uniform01();
  }

  /// Exponentially distributed value with the given mean.
  double exponential(double mean) {
    REBECA_ASSERT(mean > 0.0, "exponential mean must be positive");
    double u = uniform01();
    // Guard against log(0).
    if (u <= 0.0) u = 0x1.0p-53;
    return -mean * std::log(u);
  }

  bool bernoulli(double p) { return uniform01() < p; }

  /// Pick a uniformly random element index of a non-empty container size.
  std::size_t index(std::size_t size) {
    REBECA_ASSERT(size > 0, "index over empty range");
    return static_cast<std::size_t>(uniform_u64(0, size - 1));
  }

  template <typename T>
  const T& pick(const std::vector<T>& v) {
    return v[index(v.size())];
  }

  /// Derive an independent child generator (for per-process streams).
  Rng fork() { return Rng(next()); }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t state_[4]{};
};

}  // namespace rebeca::util

#endif  // REBECA_UTIL_RNG_HPP
