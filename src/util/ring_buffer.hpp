// Bounded FIFO buffer with explicit overflow accounting.
//
// Used for the "virtual counterpart" notification buffers of the
// relocation protocol (paper Sec. 4.1: completeness holds "within the
// boundaries of time and/or space limitations of buffering approaches").
// When capacity is exceeded the oldest element is dropped and the drop is
// counted, so callers can surface truncation instead of silently losing
// completeness.
#ifndef REBECA_UTIL_RING_BUFFER_HPP
#define REBECA_UTIL_RING_BUFFER_HPP

#include <cstddef>
#include <cstdint>
#include <deque>

#include "src/util/assert.hpp"

namespace rebeca::util {

template <typename T>
class RingBuffer {
 public:
  /// capacity == 0 means unbounded.
  explicit RingBuffer(std::size_t capacity = 0) : capacity_(capacity) {}

  /// Appends a value; drops (and counts) the oldest value on overflow.
  void push(T value) {
    if (capacity_ != 0 && items_.size() == capacity_) {
      items_.pop_front();
      ++dropped_;
    }
    items_.push_back(std::move(value));
  }

  [[nodiscard]] bool empty() const { return items_.empty(); }
  [[nodiscard]] std::size_t size() const { return items_.size(); }
  [[nodiscard]] std::size_t capacity() const { return capacity_; }
  [[nodiscard]] std::uint64_t dropped() const { return dropped_; }

  [[nodiscard]] const T& front() const {
    REBECA_CHECK(!items_.empty());
    return items_.front();
  }

  T pop() {
    REBECA_CHECK(!items_.empty());
    T value = std::move(items_.front());
    items_.pop_front();
    return value;
  }

  void clear() { items_.clear(); }

  auto begin() const { return items_.begin(); }
  auto end() const { return items_.end(); }

 private:
  std::size_t capacity_;
  std::deque<T> items_;
  std::uint64_t dropped_ = 0;
};

}  // namespace rebeca::util

#endif  // REBECA_UTIL_RING_BUFFER_HPP
