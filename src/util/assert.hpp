// Assertion macros for invariant checking.
//
// REBECA_ASSERT throws (rather than aborts) so that violated invariants
// surface as catchable test failures and carry a message with file/line
// context. Protocol code uses these liberally: a distributed protocol
// that silently continues past a broken invariant produces bugs that are
// far harder to localize than an exception at the violation site.
#ifndef REBECA_UTIL_ASSERT_HPP
#define REBECA_UTIL_ASSERT_HPP

#include <sstream>
#include <stdexcept>
#include <string>

namespace rebeca::util {

/// Thrown when an internal invariant is violated.
class AssertionError : public std::logic_error {
 public:
  explicit AssertionError(const std::string& what) : std::logic_error(what) {}
};

[[noreturn]] inline void assertion_failure(const char* expr, const char* file,
                                           int line, const std::string& msg) {
  std::ostringstream os;
  os << "assertion failed: " << expr << " at " << file << ":" << line;
  if (!msg.empty()) os << " — " << msg;
  throw AssertionError(os.str());
}

}  // namespace rebeca::util

/// Always-on invariant check. `msg` is streamed, e.g.
/// REBECA_ASSERT(x > 0, "x=" << x).
#define REBECA_ASSERT(expr, msg)                                         \
  do {                                                                   \
    if (!(expr)) {                                                       \
      std::ostringstream rebeca_assert_os_;                              \
      rebeca_assert_os_ << msg; /* NOLINT */                             \
      ::rebeca::util::assertion_failure(#expr, __FILE__, __LINE__,       \
                                        rebeca_assert_os_.str());        \
    }                                                                    \
  } while (false)

/// Invariant check without a message.
#define REBECA_CHECK(expr) REBECA_ASSERT(expr, "")

#endif  // REBECA_UTIL_ASSERT_HPP
