// Minimal leveled logging.
//
// Logging is kept deliberately small: a global level, an optional sink
// override (tests capture output), and a streaming macro. The simulator
// prepends virtual time itself where relevant; this layer knows nothing
// about simulation.
#ifndef REBECA_UTIL_LOGGING_HPP
#define REBECA_UTIL_LOGGING_HPP

#include <functional>
#include <sstream>
#include <string>

namespace rebeca::util {

enum class LogLevel { trace = 0, debug = 1, info = 2, warn = 3, error = 4, off = 5 };

const char* log_level_name(LogLevel level);

/// Process-wide logging configuration.
class Logging {
 public:
  using Sink = std::function<void(LogLevel, const std::string&)>;

  static LogLevel level();
  static void set_level(LogLevel level);

  /// Replace the sink (default: stderr). Pass nullptr to restore default.
  static void set_sink(Sink sink);

  static void emit(LogLevel level, const std::string& message);
};

}  // namespace rebeca::util

#define REBECA_LOG(level_, msg_)                                          \
  do {                                                                    \
    if (static_cast<int>(level_) >=                                       \
        static_cast<int>(::rebeca::util::Logging::level())) {             \
      std::ostringstream rebeca_log_os_;                                  \
      rebeca_log_os_ << msg_; /* NOLINT */                                \
      ::rebeca::util::Logging::emit(level_, rebeca_log_os_.str());        \
    }                                                                     \
  } while (false)

#define REBECA_TRACE(msg_) REBECA_LOG(::rebeca::util::LogLevel::trace, msg_)
#define REBECA_DEBUG(msg_) REBECA_LOG(::rebeca::util::LogLevel::debug, msg_)
#define REBECA_INFO(msg_) REBECA_LOG(::rebeca::util::LogLevel::info, msg_)
#define REBECA_WARN(msg_) REBECA_LOG(::rebeca::util::LogLevel::warn, msg_)
#define REBECA_ERROR(msg_) REBECA_LOG(::rebeca::util::LogLevel::error, msg_)

#endif  // REBECA_UTIL_LOGGING_HPP
