#include "src/util/logging.hpp"

#include <cstdio>
#include <mutex>
#include <utility>

namespace rebeca::util {

namespace {

// The library is single-threaded by design (discrete-event simulation),
// but logging configuration may be touched from test main()s; a mutex
// keeps this corner safe without imposing costs elsewhere.
std::mutex g_mutex;
LogLevel g_level = LogLevel::warn;
Logging::Sink g_sink;

}  // namespace

const char* log_level_name(LogLevel level) {
  switch (level) {
    case LogLevel::trace: return "TRACE";
    case LogLevel::debug: return "DEBUG";
    case LogLevel::info: return "INFO";
    case LogLevel::warn: return "WARN";
    case LogLevel::error: return "ERROR";
    case LogLevel::off: return "OFF";
  }
  return "?";
}

LogLevel Logging::level() {
  std::scoped_lock lock(g_mutex);
  return g_level;
}

void Logging::set_level(LogLevel level) {
  std::scoped_lock lock(g_mutex);
  g_level = level;
}

void Logging::set_sink(Sink sink) {
  std::scoped_lock lock(g_mutex);
  g_sink = std::move(sink);
}

void Logging::emit(LogLevel level, const std::string& message) {
  Sink sink;
  {
    std::scoped_lock lock(g_mutex);
    sink = g_sink;
  }
  if (sink) {
    sink(level, message);
  } else {
    std::fprintf(stderr, "[%s] %s\n", log_level_name(level), message.c_str());
  }
}

}  // namespace rebeca::util
