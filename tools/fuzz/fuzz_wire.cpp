// Fuzz harness over the wire-frame decoder (transport::decode_message).
//
// The decoder is the trust boundary of the transport backend: every
// byte a broker process reads off a socket goes through it, and a peer
// is untrusted input even on loopback. The harness asserts the decode
// contract under arbitrary bytes:
//
//   - malformed or truncated input throws WireError — never crashes,
//     never reads out of bounds (ASan/UBSan enforce the "never");
//   - anything that *does* decode re-encodes without throwing.
//
// Build shapes (CMake -DREBECA_FUZZ=ON):
//   Clang  -fsanitize=fuzzer libFuzzer target:
//            ./fuzz_wire -max_total_time=30 corpus/
//   GCC    no libFuzzer, so REBECA_FUZZ_STANDALONE makes this a corpus
//          replayer with deterministic built-in mutations (prefix
//          truncations and single-byte flips of every seed):
//            ./fuzz_wire corpus/
// Seed the corpus with fuzz_wire_corpus (valid frames of every message
// class, mirroring tests/wire_codec_test).
#include <cstddef>
#include <cstdint>
#include <string_view>

#include "src/transport/wire.hpp"

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  // rebeca-lint: allow(CAST-AUDIT, fuzzer hands raw bytes; the decoder takes a char view of the same memory)
  const std::string_view bytes(reinterpret_cast<const char*>(data), size);
  try {
    const rebeca::net::Message m = rebeca::transport::decode_message(bytes);
    (void)rebeca::transport::encode_message(m);
  } catch (const rebeca::transport::WireError&) {
    // Rejection is the contract for hostile input.
  }
  return 0;
}

#if defined(REBECA_FUZZ_STANDALONE)

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

namespace {

void run_input(const std::string& bytes) {
  // rebeca-lint: allow(CAST-AUDIT, std::string bytes viewed as the uint8 buffer the fuzzer entry expects)
  const auto* data = reinterpret_cast<const std::uint8_t*>(bytes.data());
  LLVMFuzzerTestOneInput(data, bytes.size());
}

/// Replays a seed plus a deterministic neighbourhood around it: every
/// prefix truncation and every single-byte flip. Cheap, engine-free
/// coverage of the bounds checks that a real fuzzer finds first.
void run_with_mutations(const std::string& seed) {
  run_input(seed);
  for (std::size_t len = 0; len < seed.size(); ++len) {
    run_input(seed.substr(0, len));
  }
  for (std::size_t i = 0; i < seed.size(); ++i) {
    std::string flipped = seed;
    flipped[i] = static_cast<char>(flipped[i] ^ 0x01);
    run_input(flipped);
    flipped[i] = static_cast<char>(seed[i] ^ 0x80);
    run_input(flipped);
  }
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> files;
  for (int i = 1; i < argc; ++i) {
    const std::filesystem::path p(argv[i]);
    if (std::filesystem::is_directory(p)) {
      for (const auto& e : std::filesystem::recursive_directory_iterator(p)) {
        if (e.is_regular_file()) files.push_back(e.path().string());
      }
    } else if (std::filesystem::is_regular_file(p)) {
      files.push_back(p.string());
    } else {
      std::cerr << "fuzz_wire: no such input: " << argv[i] << "\n";
      return 2;
    }
  }
  std::sort(files.begin(), files.end());
  if (files.empty()) {
    std::cerr << "usage: fuzz_wire <corpus-dir-or-file>...\n";
    return 2;
  }
  for (const std::string& f : files) {
    std::ifstream in(f, std::ios::binary);
    std::ostringstream buf;
    buf << in.rdbuf();
    run_with_mutations(buf.str());
  }
  std::cout << "fuzz_wire: replayed " << files.size()
            << " seeds (with truncation/bit-flip mutations), no crashes\n";
  return 0;
}

#endif  // REBECA_FUZZ_STANDALONE
