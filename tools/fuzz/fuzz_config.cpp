// Fuzz harness over the run-config parser (cli::parse_config).
//
// Config files are the CLI's input boundary: rebeca-run reads whatever
// JSON the user points it at, so the dependency-free parser plus the
// spec mapping behind it must reject arbitrary text with a clean
// JsonError — never a crash, an abort (std::stoi/stod on hostile
// numbers), or an out-of-bounds read (ASan/UBSan enforce the "never").
//
// Build shapes (CMake -DREBECA_FUZZ=ON):
//   Clang  -fsanitize=fuzzer libFuzzer target:
//            ./fuzz_config -max_total_time=30 corpus/
//   GCC    no libFuzzer, so REBECA_FUZZ_STANDALONE makes this a corpus
//          replayer with deterministic built-in mutations (prefix
//          truncations and single-byte flips of every seed):
//            ./fuzz_config corpus/
// Seed the corpus with the checked-in examples/configs/*.json.
#include <cstddef>
#include <cstdint>
#include <string>

#include "src/cli/config.hpp"
#include "src/cli/json.hpp"

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  // rebeca-lint: allow(CAST-AUDIT, fuzzer hands raw bytes; the parser takes a char view of the same memory)
  const std::string text(reinterpret_cast<const char*>(data), size);
  try {
    (void)rebeca::cli::parse_config(text);
  } catch (const rebeca::cli::JsonError&) {
    // Rejection is the contract for hostile input.
  }
  return 0;
}

#if defined(REBECA_FUZZ_STANDALONE)

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <vector>

namespace {

void run_input(const std::string& bytes) {
  // rebeca-lint: allow(CAST-AUDIT, std::string bytes viewed as the uint8 buffer the fuzzer entry expects)
  const auto* data = reinterpret_cast<const std::uint8_t*>(bytes.data());
  LLVMFuzzerTestOneInput(data, bytes.size());
}

/// Replays a seed plus a deterministic neighbourhood around it: every
/// prefix truncation and every single-byte flip. Cheap, engine-free
/// coverage of the parser's bounds and error paths.
void run_with_mutations(const std::string& seed) {
  run_input(seed);
  for (std::size_t len = 0; len < seed.size(); ++len) {
    run_input(seed.substr(0, len));
  }
  for (std::size_t i = 0; i < seed.size(); ++i) {
    std::string flipped = seed;
    flipped[i] = static_cast<char>(flipped[i] ^ 0x01);
    run_input(flipped);
    flipped[i] = static_cast<char>(seed[i] ^ 0x80);
    run_input(flipped);
  }
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> files;
  for (int i = 1; i < argc; ++i) {
    const std::filesystem::path p(argv[i]);
    if (std::filesystem::is_directory(p)) {
      for (const auto& e : std::filesystem::recursive_directory_iterator(p)) {
        if (e.is_regular_file()) files.push_back(e.path().string());
      }
    } else if (std::filesystem::is_regular_file(p)) {
      files.push_back(p.string());
    } else {
      std::cerr << "fuzz_config: no such input: " << argv[i] << "\n";
      return 2;
    }
  }
  std::sort(files.begin(), files.end());
  if (files.empty()) {
    std::cerr << "usage: fuzz_config <corpus-dir-or-file>...\n";
    return 2;
  }
  for (const std::string& f : files) {
    std::ifstream in(f, std::ios::binary);
    std::ostringstream buf;
    buf << in.rdbuf();
    run_with_mutations(buf.str());
  }
  std::cout << "fuzz_config: replayed " << files.size()
            << " seeds (with truncation/bit-flip mutations), no crashes\n";
  return 0;
}

#endif  // REBECA_FUZZ_STANDALONE
