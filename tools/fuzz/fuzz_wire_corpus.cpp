// Seed-corpus generator for fuzz_wire: writes one valid encoded frame
// per message class (the suite mirrors tests/wire_codec_test, so every
// tag, value kind, constraint operator and profile kind appears in the
// corpus). Fuzzing from valid frames reaches the per-tag decoders
// immediately instead of spending the budget guessing tag bytes.
//
//   ./fuzz_wire_corpus <outdir>     (default: corpus)
#include <filesystem>
#include <fstream>
#include <iomanip>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "src/net/message.hpp"
#include "src/transport/wire.hpp"

namespace rebeca {
namespace {

using filter::Constraint;
using filter::Filter;
using filter::Notification;
using filter::Value;

Filter rich_filter() {
  return Filter()
      .where("service", Constraint::eq(Value(std::string("printer"))))
      .where("cost", Constraint::range(Value(std::int64_t(5)),
                                       Value(std::int64_t(90))))
      .where("building", Constraint::prefix("main-"))
      .where("floor", Constraint::in_set({Value(std::int64_t(1)),
                                          Value(std::int64_t(2)),
                                          Value(std::int64_t(4))}))
      .where("load", Constraint::lt(Value(0.75)))
      .where("public", Constraint::ne(Value(false)))
      .where("anything", Constraint::any());
}

Notification rich_notification() {
  Notification n;
  n.set("service", std::string("printer"));
  n.set("cost", std::int64_t(42));
  n.set("building", std::string("main-3"));
  n.set("floor", std::int64_t(2));
  n.set("load", 0.25);
  n.set("public", true);
  n.stamp(NotificationId(77), ClientId(3), 9, sim::millis(1250));
  return n;
}

location::LdSpec rich_ld_spec() {
  location::LdSpec spec;
  spec.base =
      Filter().where("topic", Constraint::eq(Value(std::string("parking"))));
  spec.location_attr = "zone";
  spec.vicinity_radius = 2;
  spec.profile = location::UncertaintyProfile::adaptive(
      sim::millis(100),
      {sim::millis(120), sim::millis(50), sim::millis(50), sim::millis(20)});
  return spec;
}

std::vector<net::Message> suite() {
  std::vector<net::Message> msgs;
  const SubKey key{ClientId(7), 2};

  // Data plane.
  msgs.push_back(net::PublishMsg{rich_notification()});
  msgs.push_back(net::DeliverMsg{
      SubKey{ClientId(3), 1}, net::StampedNotification{rich_notification(), 12}});

  // Admin plane.
  msgs.push_back(net::SubscribeMsg{
      rich_filter(), {SubKey{ClientId(1), 1}, SubKey{ClientId(2), 5}}});
  msgs.push_back(net::UnsubscribeMsg{rich_filter()});
  msgs.push_back(net::AdvertiseMsg{AdvId(8), rich_filter()});
  msgs.push_back(net::UnadvertiseMsg{AdvId(8)});

  // Relocation plane.
  msgs.push_back(net::RelocateSubMsg{key, rich_filter(), 3, 120});
  msgs.push_back(net::FetchMsg{key, rich_filter(), 3, 120});
  msgs.push_back(net::ReExposeMsg{key, rich_filter(), 3});
  msgs.push_back(net::ReExposeAckMsg{key, 3});
  msgs.push_back(net::ReplayMsg{
      key, 3,
      {net::StampedNotification{rich_notification(), 121},
       net::StampedNotification{rich_notification(), 122}},
      /*truncated=*/1, /*next_seq=*/123});

  // Location plane, covering every profile kind.
  location::LdSpec spec = rich_ld_spec();
  msgs.push_back(net::LdSubscribeMsg{key, spec, LocationId(4), 2});
  spec.profile = location::UncertaintyProfile::global_resub();
  msgs.push_back(net::LdSubscribeMsg{key, spec, LocationId(0), 1});
  spec.profile = location::UncertaintyProfile::flooding();
  msgs.push_back(net::LdSubscribeMsg{key, spec, LocationId(0), 1});
  spec.profile = location::UncertaintyProfile::explicit_steps({0, 1, 1, 2, 2});
  msgs.push_back(net::LdSubscribeMsg{key, spec, LocationId(0), 1});
  msgs.push_back(net::LdUnsubscribeMsg{key});
  msgs.push_back(net::LdMoveMsg{key, LocationId(9), 1, 17, 3});
  msgs.push_back(net::LdMoveMsg{key, LocationId(), 1, 18, 0});

  // Client plane.
  net::ClientHelloMsg hello;
  hello.client = ClientId(5);
  hello.resubs.push_back(net::ClientHelloMsg::Resub{
      SubKey{ClientId(5), 1}, rich_filter(), 2, 314, LocationId()});
  hello.resubs.push_back(net::ClientHelloMsg::Resub{
      SubKey{ClientId(5), 2}, rich_ld_spec(), 1, 0, LocationId(3)});
  msgs.push_back(net::Message{hello});
  msgs.push_back(net::ClientByeMsg{ClientId(5)});
  msgs.push_back(net::ClientSubscribeMsg{SubKey{ClientId(5), 3}, rich_filter(),
                                         LocationId()});
  msgs.push_back(net::ClientSubscribeMsg{SubKey{ClientId(5), 4}, rich_ld_spec(),
                                         LocationId(2)});
  msgs.push_back(net::ClientUnsubscribeMsg{SubKey{ClientId(5), 3}});
  msgs.push_back(net::ClientPublishMsg{rich_notification()});
  msgs.push_back(net::ClientAdvertiseMsg{AdvId(1), rich_filter()});
  msgs.push_back(net::ClientUnadvertiseMsg{AdvId(1)});
  msgs.push_back(net::ClientMoveMsg{ClientId(5), LocationId(6)});

  return msgs;
}

}  // namespace
}  // namespace rebeca

int main(int argc, char** argv) {
  const std::filesystem::path outdir = argc > 1 ? argv[1] : "corpus";
  std::filesystem::create_directories(outdir);
  const std::vector<rebeca::net::Message> msgs = rebeca::suite();
  for (std::size_t i = 0; i < msgs.size(); ++i) {
    std::ostringstream name;
    name << std::setw(2) << std::setfill('0') << i << "_"
         << rebeca::net::message_name(msgs[i]) << ".bin";
    std::ofstream out(outdir / name.str(), std::ios::binary);
    const std::string bytes = rebeca::transport::encode_message(msgs[i]);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
    if (!out) {
      std::cerr << "fuzz_wire_corpus: failed writing " << name.str() << "\n";
      return 1;
    }
  }
  std::cout << "fuzz_wire_corpus: wrote " << msgs.size() << " seeds to "
            << outdir.string() << "\n";
  return 0;
}
