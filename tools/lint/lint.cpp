#include "tools/lint/lint.hpp"

#include <algorithm>
#include <cctype>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <stdexcept>

namespace rebeca::lint {

namespace {

// ---------------------------------------------------------------------------
// Rule registry
// ---------------------------------------------------------------------------

constexpr std::string_view kDetContainer = "DET-CONTAINER";
constexpr std::string_view kDetClock = "DET-CLOCK";
constexpr std::string_view kWireName = "WIRE-NAME";
constexpr std::string_view kExecBlock = "EXEC-BLOCK";
constexpr std::string_view kCastAudit = "CAST-AUDIT";
/// Meta-rule for malformed suppressions; always on.
constexpr std::string_view kBadPragma = "BAD-PRAGMA";

// ---------------------------------------------------------------------------
// Tokenizer. Comments and string/char literals never reach the rule
// matchers; comments are mined for allow pragmas instead. #include
// lines are skipped wholesale (header names look like identifiers);
// other preprocessor lines are tokenized like code so macro bodies are
// still scanned.
// ---------------------------------------------------------------------------

enum class Kind { ident, punct, number, eof };

struct Token {
  Kind kind = Kind::eof;
  std::string text;
  int line = 0;
};

struct Pragma {
  int line = 0;
  std::string rule;
  bool has_reason = false;
  bool known_rule = false;
};

struct Scan {
  std::vector<Token> tokens;
  std::vector<Pragma> pragmas;
};

bool ident_start(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}
bool ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

/// Extracts `rebeca-lint: allow(RULE, reason)` markers from one
/// comment's text.
void mine_pragmas(std::string_view comment, int line, std::vector<Pragma>& out) {
  std::size_t pos = 0;
  constexpr std::string_view kMarker = "rebeca-lint:";
  while ((pos = comment.find(kMarker, pos)) != std::string_view::npos) {
    std::size_t p = pos + kMarker.size();
    pos = p;
    while (p < comment.size() &&
           std::isspace(static_cast<unsigned char>(comment[p]))) {
      ++p;
    }
    if (comment.substr(p, 6) != "allow(") continue;
    p += 6;
    Pragma pr;
    pr.line = line;
    while (p < comment.size() && comment[p] != ',' && comment[p] != ')') {
      pr.rule.push_back(comment[p++]);
    }
    while (!pr.rule.empty() &&
           std::isspace(static_cast<unsigned char>(pr.rule.back()))) {
      pr.rule.pop_back();
    }
    if (p < comment.size() && comment[p] == ',') {
      ++p;
      std::string reason;
      while (p < comment.size() && comment[p] != ')') reason.push_back(comment[p++]);
      pr.has_reason = std::any_of(reason.begin(), reason.end(), [](char c) {
        return !std::isspace(static_cast<unsigned char>(c));
      });
    }
    for (const RuleInfo& r : rules()) {
      if (r.id == pr.rule) pr.known_rule = true;
    }
    out.push_back(std::move(pr));
  }
}

Scan tokenize(std::string_view src) {
  Scan scan;
  std::size_t i = 0;
  int line = 1;
  bool at_line_start = true;

  auto peek = [&](std::size_t off = 0) -> char {
    return i + off < src.size() ? src[i + off] : '\0';
  };

  while (i < src.size()) {
    const char c = src[i];
    if (c == '\n') {
      ++line;
      ++i;
      at_line_start = true;
      continue;
    }
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    // Line comment.
    if (c == '/' && peek(1) == '/') {
      const std::size_t start = i;
      while (i < src.size() && src[i] != '\n') ++i;
      mine_pragmas(src.substr(start, i - start), line, scan.pragmas);
      continue;
    }
    // Block comment; a pragma inside registers on the comment's *last*
    // line, so a comment directly above code covers that code line.
    if (c == '/' && peek(1) == '*') {
      const std::size_t start = i;
      i += 2;
      while (i + 1 < src.size() && !(src[i] == '*' && src[i + 1] == '/')) {
        if (src[i] == '\n') ++line;
        ++i;
      }
      i = std::min(src.size(), i + 2);
      mine_pragmas(src.substr(start, i - start), line, scan.pragmas);
      at_line_start = false;
      continue;
    }
    // Preprocessor directive: skip #include lines entirely (the header
    // name reads as identifiers); scan everything else as code.
    if (c == '#' && at_line_start) {
      std::size_t p = i + 1;
      while (p < src.size() && (src[p] == ' ' || src[p] == '\t')) ++p;
      if (src.substr(p, 7) == "include") {
        while (i < src.size() && src[i] != '\n') ++i;
        continue;
      }
      ++i;
      at_line_start = false;
      continue;
    }
    at_line_start = false;
    // Identifier — possibly a literal prefix (R"…", u8"…", L'…').
    if (ident_start(c)) {
      std::size_t p = i;
      while (p < src.size() && ident_char(src[p])) ++p;
      std::string word(src.substr(i, p - i));
      const char after = p < src.size() ? src[p] : '\0';
      const bool raw = (after == '"') && (word == "R" || word == "u8R" ||
                                          word == "uR" || word == "UR" ||
                                          word == "LR");
      const bool prefixed = (after == '"' || after == '\'') &&
                            (word == "u8" || word == "u" || word == "U" ||
                             word == "L");
      if (raw) {
        // R"delim( … )delim"
        std::size_t q = p + 1;
        std::string delim;
        while (q < src.size() && src[q] != '(') delim.push_back(src[q++]);
        const std::string closer = ")" + delim + "\"";
        std::size_t end = src.find(closer, q);
        if (end == std::string_view::npos) end = src.size();
        for (std::size_t k = p; k < std::min(end + closer.size(), src.size()); ++k) {
          if (src[k] == '\n') ++line;
        }
        i = std::min(end + closer.size(), src.size());
        continue;
      }
      if (prefixed) {
        i = p;  // fall through to the literal scanners below
        continue;
      }
      scan.tokens.push_back({Kind::ident, std::move(word), line});
      i = p;
      continue;
    }
    // String / char literal.
    if (c == '"' || c == '\'') {
      const char quote = c;
      ++i;
      while (i < src.size() && src[i] != quote) {
        if (src[i] == '\\' && i + 1 < src.size()) ++i;
        if (src[i] == '\n') ++line;
        ++i;
      }
      if (i < src.size()) ++i;  // closing quote
      continue;
    }
    // Number (digit separators and suffixes folded in).
    if (std::isdigit(static_cast<unsigned char>(c)) ||
        (c == '.' && std::isdigit(static_cast<unsigned char>(peek(1))))) {
      std::size_t p = i;
      while (p < src.size() &&
             (std::isalnum(static_cast<unsigned char>(src[p])) ||
              src[p] == '.' ||
              (src[p] == '\'' && p + 1 < src.size() &&
               std::isalnum(static_cast<unsigned char>(src[p + 1]))))) {
        ++p;
      }
      scan.tokens.push_back({Kind::number, std::string(src.substr(i, p - i)), line});
      i = p;
      continue;
    }
    // Punctuation; '::' and '->' matter to the rules, keep them fused.
    if (c == ':' && peek(1) == ':') {
      scan.tokens.push_back({Kind::punct, "::", line});
      i += 2;
      continue;
    }
    if (c == '-' && peek(1) == '>') {
      scan.tokens.push_back({Kind::punct, "->", line});
      i += 2;
      continue;
    }
    scan.tokens.push_back({Kind::punct, std::string(1, c), line});
    ++i;
  }
  return scan;
}

// ---------------------------------------------------------------------------
// Path scoping
// ---------------------------------------------------------------------------

std::string normalize(std::string_view path) {
  std::string p(path);
  std::replace(p.begin(), p.end(), '\\', '/');
  return p;
}

bool contains(const std::string& path, std::string_view needle) {
  return path.find(needle) != std::string::npos;
}

bool ends_with(const std::string& path, std::string_view suffix) {
  return path.size() >= suffix.size() &&
         path.compare(path.size() - suffix.size(), suffix.size(), suffix) == 0;
}

/// The deterministic path: engine/runtime sources, excluding the
/// wall-clock transport backend (which owns real time and real sockets
/// by design).
bool deterministic_scope(const std::string& path) {
  const bool in_src = contains(path, "src/");
  return in_src && !contains(path, "src/transport/");
}

bool wire_scope(const std::string& path) {
  return ends_with(path, "src/transport/wire.cpp") ||
         ends_with(path, "src/transport/wire.hpp");
}

bool session_exempt(const std::string& path) {
  return ends_with(path, "src/transport/session.cpp");
}

// ---------------------------------------------------------------------------
// Rule matching over the token stream
// ---------------------------------------------------------------------------

const std::set<std::string_view> kUnorderedContainers = {
    "unordered_map", "unordered_set", "unordered_multimap",
    "unordered_multiset"};

/// Identifiers that are nondeterministic by their mere presence.
const std::set<std::string_view> kClockIdents = {
    "system_clock", "steady_clock", "high_resolution_clock", "srand",
    "random_device", "gettimeofday", "clock_gettime", "timespec_get",
    "drand48", "lrand48"};

/// Flagged only when called (identifier directly followed by '(' and
/// not reached through a member access): these names are common member
/// spellings elsewhere.
const std::set<std::string_view> kClockCalls = {"rand", "time", "clock"};

const std::set<std::string_view> kBlockingSocketCalls = {
    "send", "recv", "connect", "accept", "read", "write", "poll",
    "select", "sendto", "recvfrom", "sendmsg", "recvmsg"};

/// Statement keywords: an identifier from this set before `::` still
/// means the `::` opens a *global* qualification (`return ::recv(…)`).
const std::set<std::string_view> kStmtKeywords = {
    "return",    "throw",    "case",   "else",   "do",    "new",
    "delete",    "sizeof",   "co_return", "co_await", "co_yield", "goto"};

struct Matcher {
  const std::string& path;
  const std::vector<Token>& toks;
  std::vector<Finding>& out;

  [[nodiscard]] const Token* at(std::size_t i) const {
    return i < toks.size() ? &toks[i] : nullptr;
  }
  [[nodiscard]] bool punct_at(std::size_t i, std::string_view p) const {
    const Token* t = at(i);
    return t && t->kind == Kind::punct && t->text == p;
  }

  void add(int line, std::string_view rule, std::string message) const {
    out.push_back({path, line, std::string(rule), std::move(message)});
  }

  /// True when `name(` at index i reads as a declaration (preceded by a
  /// type name) or a member call (preceded by . or ->) rather than a
  /// free call. `std::time(0)` still flags: '::' is neither.
  [[nodiscard]] bool declaration_or_member(std::size_t i) const {
    if (i == 0) return false;
    const Token& p = toks[i - 1];
    if (p.kind == Kind::ident) {
      return p.text != "return" && p.text != "co_return" && p.text != "case";
    }
    return p.text == "." || p.text == "->" || p.text == "*" || p.text == "&";
  }

  void run(const std::set<std::string, std::less<>>& active) const {
    const bool det = deterministic_scope(path);
    const bool wire = wire_scope(path);
    const bool exec = !session_exempt(path);
    for (std::size_t i = 0; i < toks.size(); ++i) {
      const Token& t = toks[i];
      if (t.kind != Kind::ident) continue;

      if (active.count(kCastAudit) &&
          (t.text == "reinterpret_cast" || t.text == "const_cast")) {
        add(t.line, kCastAudit,
            t.text + " requires a justification pragma: // rebeca-lint: "
                     "allow(CAST-AUDIT, why this is sound)");
      }

      if (det && active.count(kDetContainer) &&
          kUnorderedContainers.count(t.text)) {
        add(t.line, kDetContainer,
            "std::" + t.text +
                " in the deterministic path: hash iteration order leaks "
                "into reports — use std::map / sorted vectors, or justify "
                "that it is never iterated");
      }

      if (det && active.count(kDetClock)) {
        if (kClockIdents.count(t.text)) {
          add(t.line, kDetClock,
              t.text +
                  " outside src/transport/: wall clocks and ambient "
                  "randomness break equal-seed reproducibility — draw from "
                  "the lane's Executor::rng() / virtual clock");
        } else if (kClockCalls.count(t.text) && punct_at(i + 1, "(") &&
                   !declaration_or_member(i)) {
          add(t.line, kDetClock,
              t.text + "() outside src/transport/: use the lane's seeded "
                       "RNG stream / virtual clock instead");
        }
      }

      if (wire && active.count(kWireName)) {
        if (t.text == "AttrId" || t.text == "attr_of" || t.text == "intern") {
          add(t.line, kWireName,
              t.text + " in the wire codec: attributes must serialize by "
                       "NAME — interned ids are process-local mint order");
        } else if (t.text == "id" &&
                   (punct_at(i + 1, ".") || punct_at(i + 1, "->")) &&
                   at(i + 2) && at(i + 2)->text == "value") {
          add(t.line, kWireName,
              "raw `.id.value()` written to the wire: certify via pragma "
              "that this is a process-stable domain id, never an AttrId");
        }
      }

      const bool qualifies_global =
          i > 0 && punct_at(i - 1, "::") &&
          !(i > 1 &&
            ((toks[i - 2].kind == Kind::ident &&
              !kStmtKeywords.count(toks[i - 2].text)) ||
             toks[i - 2].text == ">" || toks[i - 2].text == ")"));
      if (exec && active.count(kExecBlock) &&
          kBlockingSocketCalls.count(t.text) && punct_at(i + 1, "(") &&
          qualifies_global) {
        add(t.line, kExecBlock,
            "::" + t.text +
                "() outside src/transport/session.cpp: blocking socket "
                "calls stall the executor lane — route I/O through the "
                "session layer");
      }
    }
  }
};

}  // namespace

const std::vector<RuleInfo>& rules() {
  static const std::vector<RuleInfo> kRules = {
      {kDetContainer,
       "no unordered containers in the deterministic path (src/ outside "
       "src/transport/)"},
      {kDetClock,
       "no wall clocks / ambient randomness outside src/transport/"},
      {kWireName, "wire codec serializes attributes by name, never AttrId"},
      {kExecBlock,
       "no blocking socket calls outside src/transport/session.cpp"},
      {kCastAudit,
       "every reinterpret_cast / const_cast carries a justification pragma"},
      {kBadPragma, "allow pragmas must name a known rule and give a reason"},
  };
  return kRules;
}

std::vector<Finding> lint_source(std::string_view path, std::string_view content,
                                 const Options& options) {
  const std::string npath = normalize(path);
  std::set<std::string, std::less<>> active;
  if (options.only_rules.empty()) {
    for (const RuleInfo& r : rules()) active.insert(std::string(r.id));
  } else {
    for (const std::string& r : options.only_rules) active.insert(r);
  }

  const Scan scan = tokenize(content);
  std::vector<Finding> findings;
  Matcher{npath, scan.tokens, findings}.run(active);

  // Suppression: an allow(RULE, reason) pragma covers its own line and
  // the next. Malformed pragmas are findings themselves.
  std::map<std::pair<int, std::string>, bool> allowed;
  for (const Pragma& p : scan.pragmas) {
    if (!p.known_rule || !p.has_reason) {
      if (active.count(kBadPragma)) {
        findings.push_back(
            {npath, p.line, std::string(kBadPragma),
             !p.known_rule
                 ? "allow pragma names unknown rule '" + p.rule + "'"
                 : "allow(" + p.rule +
                       ") without a reason — suppressions must say why"});
      }
      continue;
    }
    allowed[{p.line, p.rule}] = true;
    allowed[{p.line + 1, p.rule}] = true;
  }
  std::vector<Finding> kept;
  for (Finding& f : findings) {
    if (allowed.count({f.line, f.rule})) continue;
    kept.push_back(std::move(f));
  }
  std::sort(kept.begin(), kept.end(), [](const Finding& a, const Finding& b) {
    if (a.line != b.line) return a.line < b.line;
    return a.rule < b.rule;
  });
  return kept;
}

std::vector<Finding> lint_file(const std::string& path, const Options& options) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("rebeca-lint: cannot read " + path);
  std::ostringstream buf;
  buf << in.rdbuf();
  return lint_source(path, buf.str(), options);
}

}  // namespace rebeca::lint
