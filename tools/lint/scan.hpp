// Internal scanner layer of rebeca-lint: tokenizer, pragma mining,
// include mining, and the shared helpers the rule matchers and the
// whole-program pass both build on. Not part of the public API
// (lint.hpp); tests drive everything through lint_source/lint_project.
#ifndef REBECA_TOOLS_LINT_SCAN_HPP
#define REBECA_TOOLS_LINT_SCAN_HPP

#include <set>
#include <string>
#include <string_view>
#include <vector>

#include "tools/lint/lint.hpp"

namespace rebeca::lint::detail {

// ---------------------------------------------------------------------------
// Rule ids (the registry lives in rules.cpp; project.cpp needs the ids).
// ---------------------------------------------------------------------------

inline constexpr std::string_view kDetContainer = "DET-CONTAINER";
inline constexpr std::string_view kDetClock = "DET-CLOCK";
inline constexpr std::string_view kWireName = "WIRE-NAME";
inline constexpr std::string_view kExecBlock = "EXEC-BLOCK";
inline constexpr std::string_view kCastAudit = "CAST-AUDIT";
inline constexpr std::string_view kLayerDag = "LAYER-DAG";
inline constexpr std::string_view kPtrOrder = "PTR-ORDER";
inline constexpr std::string_view kLaneEscape = "LANE-ESCAPE";
inline constexpr std::string_view kFloatOrder = "FLOAT-ORDER";
/// Meta-rule for malformed suppressions; always on.
inline constexpr std::string_view kBadPragma = "BAD-PRAGMA";

// ---------------------------------------------------------------------------
// Token stream
// ---------------------------------------------------------------------------

enum class Kind { ident, punct, number, eof };

struct Token {
  Kind kind = Kind::eof;
  std::string text;
  int line = 0;
};

struct Pragma {
  int line = 0;
  std::string rule;
  bool has_reason = false;
  bool known_rule = false;
};

/// A `#include "…"` directive (system includes are not recorded: the
/// layering DAG and cycle detection only reason about repo files).
struct Include {
  std::string target;
  int line = 0;
};

struct Scan {
  std::vector<Token> tokens;
  std::vector<Pragma> pragmas;
  std::vector<Include> includes;
};

[[nodiscard]] Scan tokenize(std::string_view src);

// ---------------------------------------------------------------------------
// Paths and scoping
// ---------------------------------------------------------------------------

[[nodiscard]] std::string normalize(std::string_view path);
[[nodiscard]] bool contains(const std::string& path, std::string_view needle);
[[nodiscard]] bool ends_with(const std::string& path, std::string_view suffix);
/// "…src/<module>/…" → "<module>"; empty when the path has no src/
/// segment (tests, bench, tools are not part of the layered core).
[[nodiscard]] std::string module_of(std::string_view path);

using ActiveRules = std::set<std::string, std::less<>>;
[[nodiscard]] ActiveRules active_rules(const Options& options);

// ---------------------------------------------------------------------------
// Shared pipeline pieces (implemented in rules.cpp)
// ---------------------------------------------------------------------------

/// Runs every per-file rule matcher over one scanned file. No pragma
/// suppression yet — finalize() applies it.
[[nodiscard]] std::vector<Finding> match_rules(const std::string& npath,
                                               const Scan& scan,
                                               const ActiveRules& active);

/// Applies allow-pragma suppression to `raw` (a pragma covers its own
/// line and the next, per rule), appends BAD-PRAGMA findings for
/// malformed pragmas, and sorts by line then rule.
[[nodiscard]] std::vector<Finding> finalize(const std::string& npath,
                                            const Scan& scan,
                                            std::vector<Finding> raw,
                                            const ActiveRules& active);

}  // namespace rebeca::lint::detail

#endif  // REBECA_TOOLS_LINT_SCAN_HPP
