// Fixture: MUST trigger EXEC-BLOCK (global-scope blocking socket calls
// outside src/transport/session.cpp). Never compiled.
namespace fixture {

inline long push_bytes(int fd, const char* data, unsigned len) {
  long n = ::send(fd, data, len, 0);        // finding
  if (n < 0) n = ::write(fd, data, len);    // finding
  return n;
}

inline long pull_bytes(int fd, char* data, unsigned len) {
  return ::recv(fd, data, len, 0);          // finding
}

inline int wait_for_peer(int fd) {
  return ::accept(fd, nullptr, nullptr);    // finding
}

}  // namespace fixture
