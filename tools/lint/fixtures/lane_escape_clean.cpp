// Fixture: MUST stay clean under LANE-ESCAPE. Same post sites as
// lane_escape_bad.cpp with by-value captures, one audited pragma site,
// and an init-capture taking an address (address-of is not a
// by-reference capture).
// Never compiled — exercised by tests/lint_rules_test.cpp only.
#include <functional>

namespace fixture {

struct Executor {
  void post(std::function<void()> fn);
  void post_at(long when, std::function<void()> fn);
  void post_after(long delay, std::function<void()> fn);
};

struct Peer {
  Executor* exec = nullptr;
  int inbox = 0;

  void flood() {
    int local = 7;
    exec->post([local] { (void)local; });  // by value: clean
    // rebeca-lint: allow(LANE-ESCAPE, fixture: the target lane owns this Peer for its whole lifetime)
    exec->post_at(5, [this] { ++inbox; });
    exec->post_after(5, [n = &inbox] { ++*n; });  // init-capture address-of
  }

  // A declaration of a member named post is not a call site.
  void post(std::function<void()> fn);
};

}  // namespace fixture
