// Fixture: MUST trigger PTR-ORDER when linted under a virtual path
// inside src/ (lint_rules_test feeds it as src/broker/fixture.cpp).
// Never compiled — exercised by tests/lint_rules_test.cpp only.
#include <algorithm>
#include <map>
#include <set>
#include <vector>

namespace fixture {

struct Link {
  int id = 0;
};

struct Registry {
  // Iteration over a pointer-keyed ordered container follows address
  // order — allocator layout would decide emission order.
  std::map<Link*, int> weights;   // finding
  std::set<Link*> active;         // finding
};

inline void emit_in_order(std::vector<Link*>& links) {
  std::sort(links.begin(), links.end());  // finding: sorts by address
}

inline bool before(Link* a, Link* b) {
  return a < b;  // finding: raw pointer comparison
}

}  // namespace fixture
