// Fixture: MUST trigger WIRE-NAME when linted under the virtual path
// src/transport/wire.cpp. Never compiled.
namespace fixture {

struct AttrId {
  unsigned v = 0;
  [[nodiscard]] unsigned value() const { return v; }
};

struct Term {
  AttrId id;  // finding: AttrId type named in the codec
};

struct Writer {
  void u32(unsigned) {}
};

inline void encode_term(Writer& w, const Term& t) {
  w.u32(t.id.value());  // finding: raw id.value() written to the wire
}

inline void encode_interned(Writer& w, unsigned table) {
  w.u32(attr_of("price").value());  // finding: attr_of in the codec
  (void)table;
}

inline unsigned attr_of(const char*) { return 0; }

}  // namespace fixture
