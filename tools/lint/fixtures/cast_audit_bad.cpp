// Fixture: MUST trigger CAST-AUDIT — reinterpret_cast / const_cast
// without a justification pragma. Never compiled.
namespace fixture {

struct Blob {
  unsigned char bytes[8] = {};
};

inline unsigned long long raw(const Blob& b) {
  return *reinterpret_cast<const unsigned long long*>(b.bytes);  // finding
}

inline void scribble(const Blob& b) {
  const_cast<Blob&>(b).bytes[0] = 1;  // finding
}

}  // namespace fixture
