// Fixture: MUST trigger BAD-PRAGMA twice — a reasonless suppression
// and one naming an unknown rule. Never compiled.
namespace fixture {

// rebeca-lint: allow(CAST-AUDIT)
inline int no_reason(int* p) { return *p; }

// rebeca-lint: allow(NOT-A-RULE, misspelled rule ids must not silently suppress)
inline int unknown_rule(int* p) { return *p; }

}  // namespace fixture
