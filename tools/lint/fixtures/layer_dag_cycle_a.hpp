// Fixture: half of an include cycle. Fed as src/sim/cycle_a.hpp with
// layer_dag_cycle_b.hpp as src/sim/cycle_b.hpp: same module, so no
// layering violation — only the cycle detector MUST fire, reporting the
// full chain.
// Never compiled — exercised by tests/lint_rules_test.cpp only.
#include "src/sim/cycle_b.hpp"
