// Fixture: MUST trigger DET-CLOCK when linted under a virtual src/
// path. Never compiled.
#include <chrono>
#include <cstdlib>
#include <ctime>

namespace fixture {

inline long stamp() {
  auto t = std::chrono::system_clock::now();        // finding (system_clock)
  (void)t;
  long w = time(nullptr);                           // finding (time())
  return w + std::rand();                           // finding (rand())
}

inline unsigned seed_from_hardware() {
  return 7;  // the declaration below is the finding
}
// std::random_device rd;  -- commented text is not scanned; this is:
inline unsigned hw() {
  std::random_device rd;                            // finding (random_device)
  return rd();
}

}  // namespace fixture
