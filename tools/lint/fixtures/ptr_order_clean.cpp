// Fixture: MUST stay clean under PTR-ORDER. Same shapes as
// ptr_order_bad.cpp with address order replaced by domain-id order,
// pointer VALUES (not keys), and a comparator.
// Never compiled — exercised by tests/lint_rules_test.cpp only.
#include <algorithm>
#include <map>
#include <set>
#include <vector>

namespace fixture {

struct Link {
  int id = 0;
};

struct Registry {
  // Keyed by the domain id; pointer-VALUED maps iterate in key order.
  std::map<int, Link*> by_id;
  std::set<int> active_ids;
};

inline void emit_in_order(std::vector<Link*>& links) {
  std::sort(links.begin(), links.end(),
            [](const Link* a, const Link* b) { return a->id < b->id; });
}

inline bool before(const Link* a, const Link* b) {
  return a->id < b->id;
}

}  // namespace fixture
