// Fixture: clean twin of det_container_bad.cpp — ordered containers
// plus one justified lookup-only table. MUST produce zero findings.
#include <map>
#include <string>
#include <unordered_map>  // rebeca-lint: allow(DET-CONTAINER, lookup-only interner table, never iterated)

namespace fixture {

struct RoutingTable {
  std::map<std::string, int> entries;
  // rebeca-lint: allow(DET-CONTAINER, lookup-only cache, iteration order never observed)
  std::unordered_map<std::string, int> cache;
};

inline int total(const RoutingTable& t) {
  int n = 0;
  for (const auto& [k, v] : t.entries) n += v;
  return n;
}

}  // namespace fixture
