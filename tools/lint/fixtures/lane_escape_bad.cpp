// Fixture: MUST trigger LANE-ESCAPE when linted under a virtual path
// inside src/ (lint_rules_test feeds it as src/net/fixture.cpp).
// Never compiled — exercised by tests/lint_rules_test.cpp only.
#include <functional>

namespace fixture {

struct Executor {
  void post(std::function<void()> fn);
  void post_at(long when, std::function<void()> fn);
  void post_after(long delay, std::function<void()> fn);
};

struct Peer {
  Executor* exec = nullptr;
  int inbox = 0;

  void flood() {
    int local = 0;
    exec->post([this] { ++inbox; });             // finding: `this` escapes
    exec->post_at(5, [&local] { ++local; });     // finding: by-reference
    exec->post_after(5, [&] { ++inbox; });       // finding: capture-default &
  }
};

}  // namespace fixture
