// Fixture: clean twin of exec_block_bad.cpp. Method calls *named*
// send/recv/connect (the Link/Broker API) are fine — only global-scope
// ::socket calls block a lane. MUST produce zero findings.
namespace fixture {

struct Link {
  void send(int) {}
  int recv() { return 0; }
};

struct Graph {
  void connect(int a, int b) { (void)a; (void)b; }
};

inline void drive(Link& link, Graph& g) {
  link.send(1);
  (void)link.recv();
  g.connect(0, 1);
  Link* p = &link;
  p->send(2);
}

}  // namespace fixture
