// Fixture: MUST stay clean under LAYER-DAG when fed as
// src/broker/engine.cpp alongside layer_dag_header.hpp fed as
// src/filter/match.hpp — broker (layer 6) including filter (layer 2)
// is a legal down-edge.
// Never compiled — exercised by tests/lint_rules_test.cpp only.
#include "src/filter/match.hpp"

namespace fixture {
inline int use() { return answer(); }
}  // namespace fixture
