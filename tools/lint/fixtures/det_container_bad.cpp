// Fixture: MUST trigger DET-CONTAINER when linted under a virtual path
// inside src/ (lint_rules_test feeds it as src/routing/fixture.cpp).
// Never compiled — exercised by tests/lint_rules_test.cpp only.
#include <string>
#include <unordered_map>
#include <unordered_set>

namespace fixture {

struct RoutingTable {
  // Hash iteration order would leak into the routing decision order.
  std::unordered_map<std::string, int> entries;   // finding
  std::unordered_set<int> seen;                   // finding
};

inline int total(const RoutingTable& t) {
  int n = 0;
  for (const auto& [k, v] : t.entries) n += v;
  return n;
}

}  // namespace fixture
