// Fixture: clean twin of det_clock_bad.cpp. Virtual time and seeded
// RNG only; member functions *named* time()/rand() are not flagged.
// MUST produce zero findings.
namespace fixture {

struct Probe {
  long now = 0;
  [[nodiscard]] long time() const { return now; }  // declaration, not a call
};

struct Lane {
  Probe probe;
  unsigned state = 1;
  unsigned next() { return state = state * 1664525u + 1013904223u; }
  long sample() { return probe.time() + static_cast<long>(next()); }
};

}  // namespace fixture
