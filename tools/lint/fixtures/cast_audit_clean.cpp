// Fixture: clean twin of cast_audit_bad.cpp — every cast carries a
// justification pragma (same line or the line above). MUST produce
// zero findings.
namespace fixture {

struct Blob {
  unsigned char bytes[8] = {};
};

inline unsigned long long raw(const Blob& b) {
  // rebeca-lint: allow(CAST-AUDIT, byte buffer is 8-aligned and holds a u64 by construction)
  return *reinterpret_cast<const unsigned long long*>(b.bytes);
}

inline void scribble(const Blob& b) {
  const_cast<Blob&>(b).bytes[0] = 1;  // rebeca-lint: allow(CAST-AUDIT, object is never constructed const)
}

}  // namespace fixture
