// Fixture: clean twin of wire_name_bad.cpp — serializes by attribute
// name, and the one raw domain-id write is pragma-certified. MUST
// produce zero findings under the virtual path src/transport/wire.cpp.
#include <string>

namespace fixture {

struct Term {
  const std::string* name = nullptr;
};

struct Writer {
  void str(const std::string&) {}
  void u64(unsigned long long) {}
};

struct Msg {
  struct {
    [[nodiscard]] unsigned long long value() const { return 0; }
  } id;
};

inline void encode_term(Writer& w, const Term& t) {
  w.str(*t.name);
}

inline void encode_msg(Writer& w, const Msg& m) {
  // rebeca-lint: allow(WIRE-NAME, AdvId is a process-stable domain id, not an AttrId)
  w.u64(m.id.value());
}

}  // namespace fixture
