// Fixture: MUST trigger FLOAT-ORDER when linted under a virtual path in
// report/metrics code (lint_rules_test feeds it as src/metrics/fixture.cpp).
// Never compiled — exercised by tests/lint_rules_test.cpp only.
#include <vector>

namespace fixture {

inline double mean(const std::vector<double>& xs) {
  double sum = 0.0;
  for (double x : xs) {
    sum += x;  // finding: FP accumulation in a loop
  }
  return sum / static_cast<double>(xs.size());
}

inline double braceless(const std::vector<double>& xs) {
  double total = 0.0;
  for (double x : xs) total += x;  // finding: brace-less loop body
  return total;
}

}  // namespace fixture
