// Fixture: the other half of the include cycle (see
// layer_dag_cycle_a.hpp).
// Never compiled — exercised by tests/lint_rules_test.cpp only.
#include "src/sim/cycle_a.hpp"
