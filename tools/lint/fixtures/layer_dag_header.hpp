// Fixture: a plain header with no repo includes. lint_rules_test feeds
// it under various virtual src/ paths to build include-graph models.
// Never compiled — exercised by tests/lint_rules_test.cpp only.
namespace fixture {
inline int answer() { return 42; }
}  // namespace fixture
