// Fixture: MUST stay clean under FLOAT-ORDER: integer accumulation,
// FP accumulation outside any loop, an audited pragma site, and FP
// `+=` in a loop but outside the report scope is the caller's test.
// Never compiled — exercised by tests/lint_rules_test.cpp only.
#include <cstdint>
#include <vector>

namespace fixture {

inline std::uint64_t total(const std::vector<std::uint64_t>& xs) {
  // Named distinctly from the doubles below: float-typed identifiers
  // are collected per file, so an integer reusing a float's name would
  // (conservatively) flag.
  std::uint64_t acc = 0;
  for (std::uint64_t x : xs) {
    acc += x;  // integer accumulation: exact, order-free
  }
  return acc;
}

inline double pair_sum(double a, double b) {
  double sum = 0.0;
  sum += a;  // not in a loop
  sum += b;
  return sum;
}

inline double audited(const std::vector<double>& xs) {
  double sum = 0.0;
  for (double x : xs) {
    // rebeca-lint: allow(FLOAT-ORDER, fixture: xs arrives in seed order, fixed across shard counts)
    sum += x;
  }
  return sum;
}

}  // namespace fixture
