// Fixture: MUST trigger LAYER-DAG when fed as src/filter/match.cpp
// alongside layer_dag_header.hpp fed as src/broker/node.hpp — filter
// (layer 2) must not reach up into broker (layer 6).
// Never compiled — exercised by tests/lint_rules_test.cpp only.
#include "src/broker/node.hpp"

namespace fixture {
inline int use() { return answer(); }
}  // namespace fixture
