// rebeca-lint: repo-specific static analysis.
//
// A lightweight C++ source scanner (hand-rolled tokenizer, no compiler
// dependency) that mechanically enforces invariants the codebase's
// determinism, wire, and threading contracts rest on — rules a generic
// linter cannot know. Each rule can be suppressed per line with a
// justification pragma:
//
//   // rebeca-lint: allow(RULE-ID, why this site is safe)
//
// The pragma applies to its own line and the line directly below it, so
// both trailing comments and a standalone comment line above work. A
// pragma without a reason, or naming an unknown rule, is itself a
// finding — suppressions must say *why*.
//
// Rules (scoping is path-based, so the scanner can lint fixture content
// under a virtual path):
//
//   DET-CONTAINER  No std::unordered_map/set in the deterministic path
//                  (src/ outside src/transport/): hash iteration order
//                  leaks into reports and breaks equal-seed byte
//                  identity across shard counts and matcher modes.
//   DET-CLOCK      No wall clocks or ambient randomness (system_clock,
//                  steady_clock, rand, random_device, time(), …)
//                  outside src/transport/: all stochastic behaviour
//                  must flow from per-lane seeded RNG streams.
//   WIRE-NAME      The wire codec (src/transport/wire.*) serializes
//                  attributes by NAME, never by interned AttrId —
//                  AttrIds are minted in process-local first-use order
//                  and mean a different attribute at the receiver.
//   EXEC-BLOCK     No global-scope blocking socket calls (::send,
//                  ::recv, ::connect, ::accept, ::poll, …) outside
//                  src/transport/session.cpp — blocking anywhere else
//                  stalls an executor lane.
//   CAST-AUDIT     Every reinterpret_cast / const_cast needs an allow
//                  pragma explaining why it is sound.
#ifndef REBECA_TOOLS_LINT_HPP
#define REBECA_TOOLS_LINT_HPP

#include <string>
#include <string_view>
#include <vector>

namespace rebeca::lint {

struct Finding {
  std::string path;
  int line = 0;
  std::string rule;
  std::string message;
};

struct RuleInfo {
  std::string_view id;
  std::string_view summary;
};

/// The rules the scanner knows, in report order.
[[nodiscard]] const std::vector<RuleInfo>& rules();

struct Options {
  /// Rule ids to run; empty means all.
  std::vector<std::string> only_rules;
};

/// Lints `content` as if it lived at `path`. Rule applicability is
/// decided from the path string (e.g. "src/transport/wire.cpp"), which
/// lets tests feed fixture files under any virtual path.
[[nodiscard]] std::vector<Finding> lint_source(std::string_view path,
                                               std::string_view content,
                                               const Options& options = {});

/// Reads `path` from disk and lints it. Throws std::runtime_error when
/// the file cannot be read.
[[nodiscard]] std::vector<Finding> lint_file(const std::string& path,
                                             const Options& options = {});

}  // namespace rebeca::lint

#endif  // REBECA_TOOLS_LINT_HPP
