// rebeca-lint: repo-specific whole-program static analysis.
//
// A dependency-free C++ source analyzer (hand-rolled tokenizer, no
// compiler) that mechanically enforces invariants the codebase's
// determinism, wire, threading, and architecture contracts rest on —
// rules a generic linter cannot know. Per-file rules run over a single
// token stream; whole-program rules run over a repo model built from
// every file's tokens plus the resolved local include graph. Each rule
// can be suppressed per line with a justification pragma:
//
//   // rebeca-lint: allow(RULE-ID, why this site is safe)
//
// The pragma applies to its own line and the line directly below it, so
// both trailing comments and a standalone comment line above work. A
// pragma without a reason, or naming an unknown rule, is itself a
// finding — suppressions must say *why*. The number of allow sites per
// rule is budgeted (tools/lint/pragma_budget.txt, enforced by
// lint_rules_test): new suppressions require an explicit budget bump in
// the same diff.
//
// Per-file rules (scoping is path-based, so the scanner can lint
// fixture content under a virtual path):
//
//   DET-CONTAINER  No std::unordered_map/set in the deterministic path
//                  (src/ outside src/transport/): hash iteration order
//                  leaks into reports and breaks equal-seed byte
//                  identity across shard counts and matcher modes.
//   DET-CLOCK      No wall clocks or ambient randomness (system_clock,
//                  steady_clock, rand, random_device, time(), …)
//                  outside src/transport/: all stochastic behaviour
//                  must flow from per-lane seeded RNG streams.
//   WIRE-NAME      The wire codec (src/transport/wire.*) serializes
//                  attributes by NAME, never by interned AttrId —
//                  AttrIds are minted in process-local first-use order
//                  and mean a different attribute at the receiver.
//   EXEC-BLOCK     No global-scope blocking socket calls (::send,
//                  ::recv, ::connect, ::accept, ::poll, …) outside
//                  src/transport/session.cpp — blocking anywhere else
//                  stalls an executor lane.
//   CAST-AUDIT     Every reinterpret_cast / const_cast needs an allow
//                  pragma explaining why it is sound.
//   PTR-ORDER      No address order in the deterministic path: ordered
//                  containers keyed by pointers (std::map<T*, …>,
//                  std::set<T*>), comparator-free std::sort over
//                  pointer vectors, and raw pointer '<' comparisons all
//                  let allocator layout decide iteration/emission
//                  order. Key by domain ids (LinkId, ClientId) instead.
//   LANE-ESCAPE    Lambdas handed to post/post_at/post_after that
//                  capture `this` or by reference escape onto another
//                  lane's (or thread's) executor: every such capture is
//                  a potential cross-lane race no test schedule
//                  exercises and must carry an audited pragma. The
//                  static complement of the runtime lane_check.hpp
//                  asserts.
//   FLOAT-ORDER    Floating-point `+=` accumulation inside loops in
//                  report/metrics code (src/scenario/sweep.*,
//                  src/metrics/, src/analysis/): FP addition is not
//                  associative, so summation order reaching report
//                  bytes breaks the equal-seed byte-identity guarantee.
//                  Audited sites must state why their iteration order
//                  is deterministic.
//
// Whole-program rules (lint_project):
//
//   LAYER-DAG      Module layering firewall over the src/ include
//                  graph, from a declarative table:
//                    util → sim → filter → {metrics, location, routing}
//                    → net → client → broker → {workload, analysis}
//                    → scenario → transport → cli
//                  A module may include only strictly lower layers (and
//                  itself). Back-edges, includes between same-layer
//                  modules, include cycles (reported with the full
//                  include chain), and modules missing from the table
//                  are findings — new modules join the table
//                  deliberately, not by accident.
//   BAD-PRAGMA     Malformed suppressions (unknown rule / no reason);
//                  always on.
#ifndef REBECA_TOOLS_LINT_HPP
#define REBECA_TOOLS_LINT_HPP

#include <string>
#include <string_view>
#include <vector>

namespace rebeca::lint {

struct Finding {
  std::string path;
  int line = 0;
  std::string rule;
  std::string message;
};

struct RuleInfo {
  std::string_view id;
  std::string_view summary;
};

/// The rules the analyzer knows, in report order.
[[nodiscard]] const std::vector<RuleInfo>& rules();

struct Options {
  /// Rule ids to run; empty means all.
  std::vector<std::string> only_rules;
};

/// One file of the program model: content plus the path it (virtually)
/// lives at. Rule applicability and include resolution are decided from
/// the path string, which lets tests feed fixtures under any layout.
struct SourceFile {
  std::string path;
  std::string content;
};

/// Lints `content` as if it lived at `path` — per-file rules only.
[[nodiscard]] std::vector<Finding> lint_source(std::string_view path,
                                               std::string_view content,
                                               const Options& options = {});

/// Reads `path` from disk and lints it (per-file rules). Throws
/// std::runtime_error when the file cannot be read.
[[nodiscard]] std::vector<Finding> lint_file(const std::string& path,
                                             const Options& options = {});

/// Whole-program analysis: per-file rules over every file, plus
/// LAYER-DAG over the resolved local include graph (back-edges, layer
/// violations, include cycles with the full chain). Findings are
/// ordered by file path, then line, then rule.
[[nodiscard]] std::vector<Finding> lint_project(
    const std::vector<SourceFile>& files, const Options& options = {});

/// A well-formed allow pragma (known rule, with a reason). Exposed for
/// the suppression budget (lint_rules_test asserts the per-rule count
/// against tools/lint/pragma_budget.txt) and the CLI summary table.
struct PragmaSite {
  std::string path;
  int line = 0;
  std::string rule;
};

[[nodiscard]] std::vector<PragmaSite> collect_pragmas(std::string_view path,
                                                      std::string_view content);

/// Renders findings as a SARIF 2.1.0 log (one run, driver rebeca-lint)
/// suitable for GitHub code scanning upload. Paths are emitted as-is;
/// invoke the CLI with repo-relative paths for PR annotations to land.
[[nodiscard]] std::string to_sarif(const std::vector<Finding>& findings);

}  // namespace rebeca::lint

#endif  // REBECA_TOOLS_LINT_HPP
