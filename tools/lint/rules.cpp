// Per-file rule matchers of rebeca-lint, plus the pragma-suppression
// pipeline shared with the whole-program pass (project.cpp).
#include <algorithm>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <stdexcept>
#include <utility>

#include "tools/lint/scan.hpp"

namespace rebeca::lint {

namespace detail {

namespace {

// ---------------------------------------------------------------------------
// Path scoping
// ---------------------------------------------------------------------------

/// The deterministic path: engine/runtime sources, excluding the
/// wall-clock transport backend (which owns real time and real sockets
/// by design).
bool deterministic_scope(const std::string& path) {
  return contains(path, "src/") && !contains(path, "src/transport/");
}

/// Everything under src/ — lane-escape hazards include the transport
/// layer, whose reader threads post closures onto executor lanes.
bool src_scope(const std::string& path) { return contains(path, "src/"); }

/// Report/metrics code where float summation order reaches report
/// bytes: sweep aggregation, the metrics checkers, the analytic models.
bool report_scope(const std::string& path) {
  return contains(path, "src/metrics/") || contains(path, "src/analysis/") ||
         contains(path, "src/scenario/sweep.");
}

bool wire_scope(const std::string& path) {
  return ends_with(path, "src/transport/wire.cpp") ||
         ends_with(path, "src/transport/wire.hpp");
}

bool session_exempt(const std::string& path) {
  return ends_with(path, "src/transport/session.cpp");
}

// ---------------------------------------------------------------------------
// Identifier sets
// ---------------------------------------------------------------------------

const std::set<std::string_view> kUnorderedContainers = {
    "unordered_map", "unordered_set", "unordered_multimap",
    "unordered_multiset"};

/// Identifiers that are nondeterministic by their mere presence.
const std::set<std::string_view> kClockIdents = {
    "system_clock", "steady_clock", "high_resolution_clock", "srand",
    "random_device", "gettimeofday", "clock_gettime", "timespec_get",
    "drand48", "lrand48"};

/// Flagged only when called (identifier directly followed by '(' and
/// not reached through a member access): these names are common member
/// spellings elsewhere.
const std::set<std::string_view> kClockCalls = {"rand", "time", "clock"};

const std::set<std::string_view> kBlockingSocketCalls = {
    "send", "recv", "connect", "accept", "read", "write", "poll",
    "select", "sendto", "recvfrom", "sendmsg", "recvmsg"};

/// Statement keywords: an identifier from this set before `::` still
/// means the `::` opens a *global* qualification (`return ::recv(…)`).
const std::set<std::string_view> kStmtKeywords = {
    "return",    "throw",    "case",   "else",   "do",    "new",
    "delete",    "sizeof",   "co_return", "co_await", "co_yield", "goto"};

const std::set<std::string_view> kOrderedPtrKeyed = {"map", "multimap", "set",
                                                     "multiset"};

const std::set<std::string_view> kCastKeywords = {
    "static_cast", "dynamic_cast", "const_cast", "reinterpret_cast"};

const std::set<std::string_view> kPostCalls = {"post", "post_at", "post_after"};

// ---------------------------------------------------------------------------
// Rule matching over the token stream
// ---------------------------------------------------------------------------

struct Matcher {
  const std::string& path;
  const std::vector<Token>& toks;
  std::vector<Finding>& out;

  [[nodiscard]] const Token* at(std::size_t i) const {
    return i < toks.size() ? &toks[i] : nullptr;
  }
  [[nodiscard]] bool punct_at(std::size_t i, std::string_view p) const {
    const Token* t = at(i);
    return t && t->kind == Kind::punct && t->text == p;
  }
  [[nodiscard]] bool ident_at(std::size_t i, std::string_view w) const {
    const Token* t = at(i);
    return t && t->kind == Kind::ident && t->text == w;
  }

  void add(int line, std::string_view rule, std::string message) const {
    out.push_back({path, line, std::string(rule), std::move(message)});
  }

  /// True when `name(` at index i reads as a declaration (preceded by a
  /// type name) or a member call (preceded by . or ->) rather than a
  /// free call. `std::time(0)` still flags: '::' is neither.
  [[nodiscard]] bool declaration_or_member(std::size_t i) const {
    if (i == 0) return false;
    const Token& p = toks[i - 1];
    if (p.kind == Kind::ident) {
      return p.text != "return" && p.text != "co_return" && p.text != "case";
    }
    return p.text == "." || p.text == "->" || p.text == "*" || p.text == "&";
  }

  /// From the token after an opening '<' at index `open`, returns the
  /// index of the matching '>' (angle depth aware), or npos when the
  /// walk runs away — a comparison misparsed as a template argument
  /// list never terminates cleanly within the bound.
  [[nodiscard]] std::size_t match_angle(std::size_t open) const {
    int depth = 1;
    const std::size_t bound = std::min(toks.size(), open + 160);
    for (std::size_t j = open + 1; j < bound; ++j) {
      const Token& t = toks[j];
      if (t.kind != Kind::punct) continue;
      if (t.text == "<") ++depth;
      if (t.text == ">" && --depth == 0) return j;
      // A template argument list never crosses these.
      if (t.text == ";" || t.text == "{" || t.text == "}") return std::string_view::npos;
    }
    return std::string_view::npos;
  }

  [[nodiscard]] std::size_t match_paren(std::size_t open) const {
    int depth = 1;
    for (std::size_t j = open + 1; j < toks.size(); ++j) {
      const Token& t = toks[j];
      if (t.kind != Kind::punct) continue;
      if (t.text == "(") ++depth;
      if (t.text == ")" && --depth == 0) return j;
    }
    return std::string_view::npos;
  }

  // ---- PTR-ORDER helpers -------------------------------------------------

  /// Container variables declared as std::vector<…*> — candidates for
  /// the comparator-free-sort check.
  [[nodiscard]] std::set<std::string> collect_ptr_vectors() const {
    std::set<std::string> named;
    for (std::size_t i = 0; i + 1 < toks.size(); ++i) {
      if (!ident_at(i, "vector") || !punct_at(i + 1, "<")) continue;
      const std::size_t close = match_angle(i + 1);
      if (close == std::string_view::npos || close == i + 2) continue;
      if (!punct_at(close - 1, "*")) continue;
      std::size_t j = close + 1;  // skip ref/const quals before the name
      while (punct_at(j, "&") || punct_at(j, "*")) ++j;
      if (ident_at(j, "const")) ++j;
      const Token* name = at(j);
      if (name && name->kind == Kind::ident) named.insert(name->text);
    }
    return named;
  }

  /// Scalar variables declared as raw pointers (`T* p` in a parameter
  /// list or declaration) — candidates for the '<'-comparison check.
  [[nodiscard]] std::set<std::string> collect_ptr_scalars() const {
    std::set<std::string> named;
    for (std::size_t i = 1; i + 1 < toks.size(); ++i) {
      if (!punct_at(i, "*")) continue;
      if (toks[i - 1].kind != Kind::ident || toks[i + 1].kind != Kind::ident) continue;
      const Token* after = at(i + 2);
      if (after == nullptr || after->kind != Kind::punct) continue;
      // Declaration-shaped tails only; `a * b` inside an expression is
      // usually followed by an operator this set excludes.
      if (after->text == "=" || after->text == ";" || after->text == "," ||
          after->text == ")") {
        named.insert(toks[i + 1].text);
      }
    }
    return named;
  }

  void run_ptr_order() const {
    const std::set<std::string> ptr_vectors = collect_ptr_vectors();
    const std::set<std::string> ptr_scalars = collect_ptr_scalars();
    for (std::size_t i = 0; i < toks.size(); ++i) {
      const Token& t = toks[i];
      if (t.kind != Kind::ident) continue;

      // std::map<T*, …> / std::set<T*> — pointer-KEYED ordered
      // containers (pointer values are fine; iteration follows the key).
      if (kOrderedPtrKeyed.count(t.text) && punct_at(i + 1, "<")) {
        const bool keyed_first = t.text == "map" || t.text == "multimap";
        std::size_t end = std::string_view::npos;
        if (keyed_first) {
          // The key type ends at the first top-level comma.
          int depth = 1;
          const std::size_t bound = std::min(toks.size(), i + 160);
          for (std::size_t j = i + 2; j < bound; ++j) {
            const Token& u = toks[j];
            if (u.kind != Kind::punct) continue;
            if (u.text == "<") ++depth;
            if (u.text == ">" && --depth == 0) break;
            if (u.text == ";" || u.text == "{") break;
            if (u.text == "," && depth == 1) {
              end = j;
              break;
            }
          }
        } else {
          end = match_angle(i + 1);
        }
        if (end != std::string_view::npos && end > i + 2 &&
            punct_at(end - 1, "*")) {
          add(t.line, kPtrOrder,
              "std::" + t.text +
                  " keyed by a pointer: iteration follows address order, "
                  "which allocator layout decides — key by a domain id "
                  "(LinkId, ClientId, …) instead");
        }
      }

      // Comparator-free std::sort over a pointer vector sorts by
      // address.
      if (t.text == "sort" && punct_at(i + 1, "(")) {
        const std::size_t close = match_paren(i + 1);
        if (close != std::string_view::npos) {
          int depth = 0;
          std::size_t commas = 0;
          for (std::size_t j = i + 2; j < close; ++j) {
            const Token& u = toks[j];
            if (u.kind != Kind::punct) continue;
            if (u.text == "(" || u.text == "[" || u.text == "{") ++depth;
            if (u.text == ")" || u.text == "]" || u.text == "}") --depth;
            if (u.text == "," && depth == 0) ++commas;
          }
          const Token* first = at(i + 2);
          if (commas == 1 && first && first->kind == Kind::ident &&
              ptr_vectors.count(first->text)) {
            add(t.line, kPtrOrder,
                "std::sort over the pointer vector '" + first->text +
                    "' without a comparator sorts by address — sort by a "
                    "domain id, or keep the container in keyed order");
          }
        }
      }

      // Raw pointer '<' comparison: both operands declared as raw
      // pointers in this file.
      if (ptr_scalars.count(t.text) && punct_at(i + 1, "<") && at(i + 2) &&
          at(i + 2)->kind == Kind::ident &&
          ptr_scalars.count(at(i + 2)->text)) {
        add(t.line, kPtrOrder,
            "raw pointer comparison '" + t.text + " < " + at(i + 2)->text +
                "': address order is allocator order — compare domain ids");
      }
    }
  }

  // ---- LANE-ESCAPE -------------------------------------------------------

  void run_lane_escape() const {
    for (std::size_t i = 0; i < toks.size(); ++i) {
      const Token& t = toks[i];
      if (t.kind != Kind::ident || !kPostCalls.count(t.text) ||
          !punct_at(i + 1, "(")) {
        continue;
      }
      // Member declarations (`void post(EventFn fn)`) are not calls:
      // a call site reaches post through '.', '->', '::' or a bare name
      // preceded by punctuation/statement keywords, while a declaration
      // is preceded by a type identifier.
      if (i > 0 && toks[i - 1].kind == Kind::ident &&
          !kStmtKeywords.count(toks[i - 1].text)) {
        continue;
      }
      const std::size_t close = match_paren(i + 1);
      if (close == std::string_view::npos) continue;
      // Every lambda in argument position within the call: capture list
      // opens at a '[' directly after '(' or ','.
      for (std::size_t j = i + 2; j < close; ++j) {
        if (!punct_at(j, "[")) continue;
        if (!(punct_at(j - 1, "(") || punct_at(j - 1, ","))) continue;
        // Walk the capture list to its ']'.
        std::size_t depth = 1;
        std::size_t k = j + 1;
        bool hazard = false;
        std::string what;
        for (; k < close && depth > 0; ++k) {
          const Token& u = toks[k];
          if (u.kind == Kind::punct) {
            if (u.text == "[") ++depth;
            if (u.text == "]" && --depth == 0) break;
            // '&' in capture position ("[&]", "[&x", ", &x") is a
            // by-reference capture; after '=' it is address-of inside an
            // init-capture, which copies the pointer by value.
            if (u.text == "&" && !hazard &&
                (punct_at(k - 1, "[") || punct_at(k - 1, ","))) {
              hazard = true;
              what = "a by-reference capture";
            }
          } else if (u.kind == Kind::ident && u.text == "this") {
            hazard = true;
            what = "`this`";
          }
        }
        if (hazard) {
          add(toks[j].line, kLaneEscape,
              "lambda passed to " + t.text + "() captures " + what +
                  ": the closure escapes onto another lane's executor, "
                  "where the capture is a cross-lane race — capture by "
                  "value, or audit the site with a pragma naming why the "
                  "target lane owns the captured state");
        }
      }
    }
  }

  // ---- FLOAT-ORDER -------------------------------------------------------

  /// Identifiers declared with a floating-point element type: `double
  /// sum`, `std::vector<double> xs`, `std::array<double, N> sums`.
  [[nodiscard]] std::set<std::string> collect_float_idents() const {
    std::set<std::string> named;
    for (std::size_t i = 0; i < toks.size(); ++i) {
      const Token& t = toks[i];
      if (t.kind != Kind::ident || (t.text != "double" && t.text != "float")) {
        continue;
      }
      const Token* next = at(i + 1);
      if (next == nullptr) continue;
      if (next->kind == Kind::ident) {  // double sum = 0;
        named.insert(next->text);
        continue;
      }
      // Template element type: find the enclosing '>' and the declared
      // name after it. Casts (`static_cast<double>(…)`) have '(' there.
      if (next->kind == Kind::punct && (next->text == ">" || next->text == ",")) {
        int depth = 1;
        std::size_t j = i + 1;
        for (; j < std::min(toks.size(), i + 40); ++j) {
          const Token& u = toks[j];
          if (u.kind != Kind::punct) continue;
          if (u.text == "<") ++depth;
          if (u.text == ">" && --depth == 0) break;
        }
        std::size_t k = j + 1;
        while (k < toks.size() && toks[k].kind == Kind::punct &&
               (toks[k].text == "&" || toks[k].text == "*")) {
          ++k;
        }
        const Token* name = at(k);
        if (name && name->kind == Kind::ident) named.insert(name->text);
      }
    }
    return named;
  }

  void run_float_order() const {
    const std::set<std::string> floats = collect_float_idents();
    // Scope walk: brace stack marking loop bodies, plus brace-less loop
    // bodies (flagged until the closing ';').
    std::vector<bool> brace_is_loop;
    int loop_depth = 0;
    bool pending_loop_brace = false;
    bool braceless_loop = false;
    for (std::size_t i = 0; i < toks.size(); ++i) {
      const Token& t = toks[i];
      if (t.kind == Kind::ident && (t.text == "for" || t.text == "while") &&
          punct_at(i + 1, "(")) {
        const std::size_t close = match_paren(i + 1);
        if (close != std::string_view::npos) {
          if (punct_at(close + 1, "{")) {
            pending_loop_brace = true;
          } else {
            braceless_loop = true;
          }
        }
        continue;
      }
      if (t.kind == Kind::ident && t.text == "do" && punct_at(i + 1, "{")) {
        pending_loop_brace = true;
        continue;
      }
      if (t.kind == Kind::punct) {
        if (t.text == "{") {
          brace_is_loop.push_back(pending_loop_brace);
          if (pending_loop_brace) ++loop_depth;
          pending_loop_brace = false;
          continue;
        }
        if (t.text == "}") {
          if (!brace_is_loop.empty()) {
            if (brace_is_loop.back()) --loop_depth;
            brace_is_loop.pop_back();
          }
          continue;
        }
        if (t.text == ";") {
          braceless_loop = false;
          continue;
        }
      }
      if (t.kind != Kind::ident || !floats.count(t.text)) continue;
      if (loop_depth == 0 && !braceless_loop) continue;
      // `sum +=` or `sums[c] +=`.
      std::size_t j = i + 1;
      if (punct_at(j, "[")) {
        int depth = 1;
        for (++j; j < toks.size() && depth > 0; ++j) {
          if (!punct_at(j, "[") && !punct_at(j, "]")) continue;
          depth += toks[j].text == "[" ? 1 : -1;
        }
      }
      if (punct_at(j, "+=")) {
        add(t.line, kFloatOrder,
            "floating-point accumulation '" + t.text +
                " +=' inside a loop: FP addition is not associative, so "
                "the source's iteration order reaches the report bytes — "
                "iterate a deterministically-ordered source and say so in "
                "a pragma, or accumulate integers");
      }
    }
  }

  // ---- main token walk (the PR-7 rule families) --------------------------

  void run(const ActiveRules& active) const {
    const bool det = deterministic_scope(path);
    const bool wire = wire_scope(path);
    const bool exec = !session_exempt(path);
    for (std::size_t i = 0; i < toks.size(); ++i) {
      const Token& t = toks[i];
      if (t.kind != Kind::ident) continue;

      if (active.count(kCastAudit) &&
          (t.text == "reinterpret_cast" || t.text == "const_cast")) {
        add(t.line, kCastAudit,
            t.text + " requires a justification pragma: // rebeca-lint: "
                     "allow(CAST-AUDIT, why this is sound)");
      }

      if (det && active.count(kDetContainer) &&
          kUnorderedContainers.count(t.text)) {
        add(t.line, kDetContainer,
            "std::" + t.text +
                " in the deterministic path: hash iteration order leaks "
                "into reports — use std::map / sorted vectors, or justify "
                "that it is never iterated");
      }

      if (det && active.count(kDetClock)) {
        if (kClockIdents.count(t.text)) {
          add(t.line, kDetClock,
              t.text +
                  " outside src/transport/: wall clocks and ambient "
                  "randomness break equal-seed reproducibility — draw from "
                  "the lane's Executor::rng() / virtual clock");
        } else if (kClockCalls.count(t.text) && punct_at(i + 1, "(") &&
                   !declaration_or_member(i)) {
          add(t.line, kDetClock,
              t.text + "() outside src/transport/: use the lane's seeded "
                       "RNG stream / virtual clock instead");
        }
      }

      if (wire && active.count(kWireName)) {
        if (t.text == "AttrId" || t.text == "attr_of" || t.text == "intern") {
          add(t.line, kWireName,
              t.text + " in the wire codec: attributes must serialize by "
                       "NAME — interned ids are process-local mint order");
        } else if (t.text == "id" &&
                   (punct_at(i + 1, ".") || punct_at(i + 1, "->")) &&
                   at(i + 2) && at(i + 2)->text == "value") {
          add(t.line, kWireName,
              "raw `.id.value()` written to the wire: certify via pragma "
              "that this is a process-stable domain id, never an AttrId");
        }
      }

      const bool qualifies_global =
          i > 0 && punct_at(i - 1, "::") &&
          !(i > 1 &&
            ((toks[i - 2].kind == Kind::ident &&
              !kStmtKeywords.count(toks[i - 2].text)) ||
             toks[i - 2].text == ">" || toks[i - 2].text == ")"));
      if (exec && active.count(kExecBlock) &&
          kBlockingSocketCalls.count(t.text) && punct_at(i + 1, "(") &&
          qualifies_global) {
        add(t.line, kExecBlock,
            "::" + t.text +
                "() outside src/transport/session.cpp: blocking socket "
                "calls stall the executor lane — route I/O through the "
                "session layer");
      }
    }
  }
};

}  // namespace

std::vector<Finding> match_rules(const std::string& npath, const Scan& scan,
                                 const ActiveRules& active) {
  std::vector<Finding> findings;
  Matcher m{npath, scan.tokens, findings};
  m.run(active);
  if (active.count(kPtrOrder) && deterministic_scope(npath)) m.run_ptr_order();
  if (active.count(kLaneEscape) && src_scope(npath)) m.run_lane_escape();
  if (active.count(kFloatOrder) && report_scope(npath)) m.run_float_order();
  return findings;
}

std::vector<Finding> finalize(const std::string& npath, const Scan& scan,
                              std::vector<Finding> raw,
                              const ActiveRules& active) {
  // Suppression: an allow(RULE, reason) pragma covers its own line and
  // the next. Malformed pragmas are findings themselves.
  std::map<std::pair<int, std::string>, bool> allowed;
  for (const Pragma& p : scan.pragmas) {
    if (!p.known_rule || !p.has_reason) {
      if (active.count(kBadPragma)) {
        raw.push_back(
            {npath, p.line, std::string(kBadPragma),
             !p.known_rule
                 ? "allow pragma names unknown rule '" + p.rule + "'"
                 : "allow(" + p.rule +
                       ") without a reason — suppressions must say why"});
      }
      continue;
    }
    allowed[{p.line, p.rule}] = true;
    allowed[{p.line + 1, p.rule}] = true;
  }
  std::vector<Finding> kept;
  for (Finding& f : raw) {
    if (allowed.count({f.line, f.rule})) continue;
    kept.push_back(std::move(f));
  }
  std::sort(kept.begin(), kept.end(), [](const Finding& a, const Finding& b) {
    if (a.line != b.line) return a.line < b.line;
    return a.rule < b.rule;
  });
  return kept;
}

}  // namespace detail

const std::vector<RuleInfo>& rules() {
  static const std::vector<RuleInfo> kRules = {
      {detail::kDetContainer,
       "no unordered containers in the deterministic path (src/ outside "
       "src/transport/)"},
      {detail::kDetClock,
       "no wall clocks / ambient randomness outside src/transport/"},
      {detail::kWireName, "wire codec serializes attributes by name, never AttrId"},
      {detail::kExecBlock,
       "no blocking socket calls outside src/transport/session.cpp"},
      {detail::kCastAudit,
       "every reinterpret_cast / const_cast carries a justification pragma"},
      {detail::kLayerDag,
       "src/ modules include only strictly lower layers of the declared "
       "DAG; no cycles, no unregistered modules"},
      {detail::kPtrOrder,
       "no pointer-keyed ordered containers, address sorts, or pointer < "
       "comparisons in the deterministic path"},
      {detail::kLaneEscape,
       "lambdas posted to executors must not capture this/by-reference "
       "without an audited pragma"},
      {detail::kFloatOrder,
       "no floating-point += accumulation in loops in report/metrics code "
       "without a deterministic-order pragma"},
      {detail::kBadPragma, "allow pragmas must name a known rule and give a reason"},
  };
  return kRules;
}

std::vector<Finding> lint_source(std::string_view path, std::string_view content,
                                 const Options& options) {
  const std::string npath = detail::normalize(path);
  const detail::ActiveRules active = detail::active_rules(options);
  const detail::Scan scan = detail::tokenize(content);
  return detail::finalize(npath, scan,
                          detail::match_rules(npath, scan, active), active);
}

std::vector<Finding> lint_file(const std::string& path, const Options& options) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("rebeca-lint: cannot read " + path);
  std::ostringstream buf;
  buf << in.rdbuf();
  return lint_source(path, buf.str(), options);
}

std::vector<PragmaSite> collect_pragmas(std::string_view path,
                                        std::string_view content) {
  const std::string npath = detail::normalize(path);
  const detail::Scan scan = detail::tokenize(content);
  std::vector<PragmaSite> sites;
  for (const detail::Pragma& p : scan.pragmas) {
    if (p.known_rule && p.has_reason) sites.push_back({npath, p.line, p.rule});
  }
  return sites;
}

}  // namespace rebeca::lint
