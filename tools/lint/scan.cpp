#include "tools/lint/scan.hpp"

#include <algorithm>
#include <cctype>

namespace rebeca::lint::detail {

namespace {

bool ident_start(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}
bool ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

/// Extracts `rebeca-lint: allow(RULE, reason)` markers from one
/// comment's text.
void mine_pragmas(std::string_view comment, int line, std::vector<Pragma>& out) {
  std::size_t pos = 0;
  constexpr std::string_view kMarker = "rebeca-lint:";
  while ((pos = comment.find(kMarker, pos)) != std::string_view::npos) {
    std::size_t p = pos + kMarker.size();
    pos = p;
    while (p < comment.size() &&
           std::isspace(static_cast<unsigned char>(comment[p]))) {
      ++p;
    }
    if (comment.substr(p, 6) != "allow(") continue;
    p += 6;
    Pragma pr;
    pr.line = line;
    while (p < comment.size() && comment[p] != ',' && comment[p] != ')') {
      pr.rule.push_back(comment[p++]);
    }
    while (!pr.rule.empty() &&
           std::isspace(static_cast<unsigned char>(pr.rule.back()))) {
      pr.rule.pop_back();
    }
    if (p < comment.size() && comment[p] == ',') {
      ++p;
      std::string reason;
      while (p < comment.size() && comment[p] != ')') reason.push_back(comment[p++]);
      pr.has_reason = std::any_of(reason.begin(), reason.end(), [](char c) {
        return !std::isspace(static_cast<unsigned char>(c));
      });
    }
    for (const RuleInfo& r : rules()) {
      if (r.id == pr.rule) pr.known_rule = true;
    }
    out.push_back(std::move(pr));
  }
}

}  // namespace

// Comments and string/char literals never reach the rule matchers;
// comments are mined for allow pragmas instead. `#include "…"` lines are
// mined for the include graph (the header name would otherwise read as
// identifiers); other preprocessor lines are tokenized like code so
// macro bodies are still scanned.
Scan tokenize(std::string_view src) {
  Scan scan;
  std::size_t i = 0;
  int line = 1;
  bool at_line_start = true;

  auto peek = [&](std::size_t off = 0) -> char {
    return i + off < src.size() ? src[i + off] : '\0';
  };

  while (i < src.size()) {
    const char c = src[i];
    if (c == '\n') {
      ++line;
      ++i;
      at_line_start = true;
      continue;
    }
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    // Line comment.
    if (c == '/' && peek(1) == '/') {
      const std::size_t start = i;
      while (i < src.size() && src[i] != '\n') ++i;
      mine_pragmas(src.substr(start, i - start), line, scan.pragmas);
      continue;
    }
    // Block comment; a pragma inside registers on the comment's *last*
    // line, so a comment directly above code covers that code line.
    if (c == '/' && peek(1) == '*') {
      const std::size_t start = i;
      i += 2;
      while (i + 1 < src.size() && !(src[i] == '*' && src[i + 1] == '/')) {
        if (src[i] == '\n') ++line;
        ++i;
      }
      i = std::min(src.size(), i + 2);
      mine_pragmas(src.substr(start, i - start), line, scan.pragmas);
      at_line_start = false;
      continue;
    }
    // Preprocessor directive: mine #include "…" targets for the include
    // graph, skip the rest of the include line; scan everything else as
    // code.
    if (c == '#' && at_line_start) {
      std::size_t p = i + 1;
      while (p < src.size() && (src[p] == ' ' || src[p] == '\t')) ++p;
      if (src.substr(p, 7) == "include") {
        p += 7;
        while (p < src.size() && (src[p] == ' ' || src[p] == '\t')) ++p;
        if (p < src.size() && src[p] == '"') {
          ++p;
          Include inc;
          inc.line = line;
          while (p < src.size() && src[p] != '"' && src[p] != '\n') {
            inc.target.push_back(src[p++]);
          }
          if (!inc.target.empty()) scan.includes.push_back(std::move(inc));
        }
        while (i < src.size() && src[i] != '\n') ++i;
        continue;
      }
      ++i;
      at_line_start = false;
      continue;
    }
    at_line_start = false;
    // Identifier — possibly a literal prefix (R"…", u8"…", L'…').
    if (ident_start(c)) {
      std::size_t p = i;
      while (p < src.size() && ident_char(src[p])) ++p;
      std::string word(src.substr(i, p - i));
      const char after = p < src.size() ? src[p] : '\0';
      const bool raw = (after == '"') && (word == "R" || word == "u8R" ||
                                          word == "uR" || word == "UR" ||
                                          word == "LR");
      const bool prefixed = (after == '"' || after == '\'') &&
                            (word == "u8" || word == "u" || word == "U" ||
                             word == "L");
      if (raw) {
        // R"delim( … )delim"
        std::size_t q = p + 1;
        std::string delim;
        while (q < src.size() && src[q] != '(') delim.push_back(src[q++]);
        const std::string closer = ")" + delim + "\"";
        std::size_t end = src.find(closer, q);
        if (end == std::string_view::npos) end = src.size();
        for (std::size_t k = p; k < std::min(end + closer.size(), src.size()); ++k) {
          if (src[k] == '\n') ++line;
        }
        i = std::min(end + closer.size(), src.size());
        continue;
      }
      if (prefixed) {
        i = p;  // fall through to the literal scanners below
        continue;
      }
      scan.tokens.push_back({Kind::ident, std::move(word), line});
      i = p;
      continue;
    }
    // String / char literal.
    if (c == '"' || c == '\'') {
      const char quote = c;
      ++i;
      while (i < src.size() && src[i] != quote) {
        if (src[i] == '\\' && i + 1 < src.size()) ++i;
        if (src[i] == '\n') ++line;
        ++i;
      }
      if (i < src.size()) ++i;  // closing quote
      continue;
    }
    // Number (digit separators and suffixes folded in).
    if (std::isdigit(static_cast<unsigned char>(c)) ||
        (c == '.' && std::isdigit(static_cast<unsigned char>(peek(1))))) {
      std::size_t p = i;
      while (p < src.size() &&
             (std::isalnum(static_cast<unsigned char>(src[p])) ||
              src[p] == '.' ||
              (src[p] == '\'' && p + 1 < src.size() &&
               std::isalnum(static_cast<unsigned char>(src[p + 1]))))) {
        ++p;
      }
      scan.tokens.push_back({Kind::number, std::string(src.substr(i, p - i)), line});
      i = p;
      continue;
    }
    // Punctuation; '::', '->' and '+=' matter to the rules, keep them
    // fused.
    if (c == ':' && peek(1) == ':') {
      scan.tokens.push_back({Kind::punct, "::", line});
      i += 2;
      continue;
    }
    if (c == '-' && peek(1) == '>') {
      scan.tokens.push_back({Kind::punct, "->", line});
      i += 2;
      continue;
    }
    if (c == '+' && peek(1) == '=') {
      scan.tokens.push_back({Kind::punct, "+=", line});
      i += 2;
      continue;
    }
    scan.tokens.push_back({Kind::punct, std::string(1, c), line});
    ++i;
  }
  return scan;
}

std::string normalize(std::string_view path) {
  std::string p(path);
  std::replace(p.begin(), p.end(), '\\', '/');
  return p;
}

bool contains(const std::string& path, std::string_view needle) {
  return path.find(needle) != std::string::npos;
}

bool ends_with(const std::string& path, std::string_view suffix) {
  return path.size() >= suffix.size() &&
         path.compare(path.size() - suffix.size(), suffix.size(), suffix) == 0;
}

std::string module_of(std::string_view path) {
  const std::string p = normalize(path);
  // The src/ segment must start a path component ("src/…" or "…/src/…"):
  // a directory that merely ends in "src" does not anchor the layering.
  std::size_t at = std::string::npos;
  for (std::size_t pos = p.find("src/"); pos != std::string::npos;
       pos = p.find("src/", pos + 1)) {
    if (pos == 0 || p[pos - 1] == '/') {
      at = pos;
      break;
    }
  }
  if (at == std::string::npos) return {};
  const std::size_t start = at + 4;
  const std::size_t slash = p.find('/', start);
  if (slash == std::string::npos) return {};  // a file directly in src/
  return p.substr(start, slash - start);
}

ActiveRules active_rules(const Options& options) {
  ActiveRules active;
  if (options.only_rules.empty()) {
    for (const RuleInfo& r : rules()) active.insert(std::string(r.id));
  } else {
    for (const std::string& r : options.only_rules) active.insert(r);
  }
  return active;
}

}  // namespace rebeca::lint::detail
