// rebeca-lint CLI: whole-program scan over files or directories, print
// findings, exit nonzero when any survive. CI runs this over src/,
// tests/, bench/, examples/ and tools/fuzz/ and uploads the SARIF log.
//
//   rebeca-lint [--rule=NAME]... [--rules A,B] [--list-rules]
//               [--sarif out.sarif] [--summary] <file-or-dir>...
#include <algorithm>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "tools/lint/lint.hpp"

namespace fs = std::filesystem;

namespace {

bool lintable(const fs::path& p) {
  static const std::set<std::string> kExts = {".cpp", ".hpp", ".h", ".cc",
                                              ".hh", ".cxx"};
  return kExts.count(p.extension().string()) != 0;
}

void collect(const fs::path& p, std::vector<std::string>& out) {
  if (fs::is_directory(p)) {
    for (const auto& entry : fs::recursive_directory_iterator(p)) {
      if (entry.is_regular_file() && lintable(entry.path())) {
        out.push_back(entry.path().string());
      }
    }
  } else {
    out.push_back(p.string());
  }
}

int usage(std::ostream& out, int code) {
  out << "usage: rebeca-lint [--rule=NAME]... [--rules A,B] [--list-rules]\n"
         "                   [--sarif out.sarif] [--summary] "
         "<file-or-dir>...\n";
  return code;
}

}  // namespace

int main(int argc, char** argv) {
  rebeca::lint::Options options;
  std::vector<std::string> paths;
  std::string sarif_path;
  bool summary = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--list-rules") {
      for (const auto& r : rebeca::lint::rules()) {
        std::cout << r.id << "  " << r.summary << "\n";
      }
      return 0;
    }
    if (arg.rfind("--rule=", 0) == 0) {
      const std::string rule = arg.substr(7);
      if (rule.empty()) return usage(std::cerr, 2);
      options.only_rules.push_back(rule);
      continue;
    }
    if (arg == "--rules") {
      if (++i >= argc) {
        std::cerr << "rebeca-lint: --rules needs a comma-separated list\n";
        return 2;
      }
      std::string list = argv[i];
      std::size_t start = 0;
      while (start <= list.size()) {
        const std::size_t comma = list.find(',', start);
        const std::string rule =
            list.substr(start, comma == std::string::npos ? std::string::npos
                                                          : comma - start);
        if (!rule.empty()) options.only_rules.push_back(rule);
        if (comma == std::string::npos) break;
        start = comma + 1;
      }
      continue;
    }
    if (arg == "--sarif") {
      if (++i >= argc) {
        std::cerr << "rebeca-lint: --sarif needs an output path\n";
        return 2;
      }
      sarif_path = argv[i];
      continue;
    }
    if (arg == "--summary") {
      summary = true;
      continue;
    }
    if (arg == "--help" || arg == "-h") return usage(std::cout, 0);
    paths.push_back(arg);
  }
  if (paths.empty()) {
    std::cerr << "rebeca-lint: no paths given (try --help)\n";
    return 2;
  }

  // Unknown rule names would silently disable everything they mistyped.
  for (const std::string& r : options.only_rules) {
    const auto& known = rebeca::lint::rules();
    if (std::none_of(known.begin(), known.end(),
                     [&](const auto& k) { return k.id == r; })) {
      std::cerr << "rebeca-lint: unknown rule '" << r
                << "' (see --list-rules)\n";
      return 2;
    }
  }

  std::vector<std::string> files;
  for (const std::string& p : paths) {
    if (!fs::exists(p)) {
      std::cerr << "rebeca-lint: no such path: " << p << "\n";
      return 2;
    }
    collect(p, files);
  }
  std::sort(files.begin(), files.end());
  files.erase(std::unique(files.begin(), files.end()), files.end());

  // Load everything up front: LAYER-DAG needs the whole include graph.
  std::vector<rebeca::lint::SourceFile> sources;
  sources.reserve(files.size());
  for (const std::string& file : files) {
    std::ifstream in(file, std::ios::binary);
    if (!in) {
      std::cerr << "rebeca-lint: cannot read " << file << "\n";
      return 2;
    }
    std::ostringstream buf;
    buf << in.rdbuf();
    sources.push_back({file, buf.str()});
  }

  const std::vector<rebeca::lint::Finding> findings =
      rebeca::lint::lint_project(sources, options);
  for (const auto& f : findings) {
    std::cout << f.path << ":" << f.line << ": [" << f.rule << "] "
              << f.message << "\n";
  }

  if (!sarif_path.empty()) {
    std::ofstream out(sarif_path, std::ios::binary);
    if (!out) {
      std::cerr << "rebeca-lint: cannot write " << sarif_path << "\n";
      return 2;
    }
    out << rebeca::lint::to_sarif(findings);
  }

  if (summary) {
    // One line per rule: findings and audited allow sites.
    std::map<std::string, std::size_t> by_rule;
    for (const auto& f : findings) ++by_rule[f.rule];
    std::map<std::string, std::size_t> allows;
    for (const auto& src : sources) {
      for (const auto& site :
           rebeca::lint::collect_pragmas(src.path, src.content)) {
        ++allows[site.rule];
      }
    }
    std::cout << "rule            findings  allows\n";
    for (const auto& r : rebeca::lint::rules()) {
      const std::string id(r.id);
      std::cout << id << std::string(id.size() < 16 ? 16 - id.size() : 1, ' ')
                << by_rule[id] << "         " << allows[id] << "\n";
    }
  }

  std::cout << "rebeca-lint: " << files.size() << " files, "
            << findings.size() << " finding"
            << (findings.size() == 1 ? "" : "s") << "\n";
  return findings.empty() ? 0 : 1;
}
