// rebeca-lint CLI: scan files or directories, print findings, exit
// nonzero when any survive. CI runs this over src/, tests/ and bench/.
//
//   rebeca-lint [--rules A,B] [--list-rules] <file-or-dir>...
#include <algorithm>
#include <filesystem>
#include <iostream>
#include <set>
#include <string>
#include <vector>

#include "tools/lint/lint.hpp"

namespace fs = std::filesystem;

namespace {

bool lintable(const fs::path& p) {
  static const std::set<std::string> kExts = {".cpp", ".hpp", ".h", ".cc",
                                              ".hh", ".cxx"};
  return kExts.count(p.extension().string()) != 0;
}

void collect(const fs::path& p, std::vector<std::string>& out) {
  if (fs::is_directory(p)) {
    for (const auto& entry : fs::recursive_directory_iterator(p)) {
      if (entry.is_regular_file() && lintable(entry.path())) {
        out.push_back(entry.path().string());
      }
    }
  } else {
    out.push_back(p.string());
  }
}

}  // namespace

int main(int argc, char** argv) {
  rebeca::lint::Options options;
  std::vector<std::string> paths;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--list-rules") {
      for (const auto& r : rebeca::lint::rules()) {
        std::cout << r.id << "  " << r.summary << "\n";
      }
      return 0;
    }
    if (arg == "--rules") {
      if (++i >= argc) {
        std::cerr << "rebeca-lint: --rules needs a comma-separated list\n";
        return 2;
      }
      std::string list = argv[i];
      std::size_t start = 0;
      while (start <= list.size()) {
        const std::size_t comma = list.find(',', start);
        const std::string rule =
            list.substr(start, comma == std::string::npos ? std::string::npos
                                                          : comma - start);
        if (!rule.empty()) options.only_rules.push_back(rule);
        if (comma == std::string::npos) break;
        start = comma + 1;
      }
      continue;
    }
    if (arg == "--help" || arg == "-h") {
      std::cout << "usage: rebeca-lint [--rules A,B] [--list-rules] "
                   "<file-or-dir>...\n";
      return 0;
    }
    paths.push_back(arg);
  }
  if (paths.empty()) {
    std::cerr << "rebeca-lint: no paths given (try --help)\n";
    return 2;
  }

  std::vector<std::string> files;
  for (const std::string& p : paths) {
    if (!fs::exists(p)) {
      std::cerr << "rebeca-lint: no such path: " << p << "\n";
      return 2;
    }
    collect(p, files);
  }
  std::sort(files.begin(), files.end());

  std::size_t findings = 0;
  for (const std::string& file : files) {
    try {
      for (const auto& f : rebeca::lint::lint_file(file, options)) {
        std::cout << f.path << ":" << f.line << ": [" << f.rule << "] "
                  << f.message << "\n";
        ++findings;
      }
    } catch (const std::exception& e) {
      std::cerr << e.what() << "\n";
      return 2;
    }
  }
  std::cout << "rebeca-lint: " << files.size() << " files, " << findings
            << " finding" << (findings == 1 ? "" : "s") << "\n";
  return findings == 0 ? 0 : 1;
}
