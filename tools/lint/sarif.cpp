// SARIF 2.1.0 emitter: one run, driver "rebeca-lint", every known rule
// declared so GitHub code scanning can render rule metadata even for
// clean runs. Hand-rolled serialization, matching the repo's
// dependency-free JSON stance (src/cli/json.* is the parser side).
#include <string>
#include <vector>

#include "tools/lint/scan.hpp"

namespace rebeca::lint {

namespace {

void append_escaped(std::string& out, std::string_view s) {
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          constexpr char kHex[] = "0123456789abcdef";
          out += "\\u00";
          out += kHex[(c >> 4) & 0xf];
          out += kHex[c & 0xf];
        } else {
          out += c;
        }
    }
  }
}

void append_quoted(std::string& out, std::string_view s) {
  out += '"';
  append_escaped(out, s);
  out += '"';
}

}  // namespace

std::string to_sarif(const std::vector<Finding>& findings) {
  std::string out;
  out.reserve(4096 + findings.size() * 256);
  out +=
      "{\n"
      "  \"$schema\": "
      "\"https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
      "Schemata/sarif-schema-2.1.0.json\",\n"
      "  \"version\": \"2.1.0\",\n"
      "  \"runs\": [\n"
      "    {\n"
      "      \"tool\": {\n"
      "        \"driver\": {\n"
      "          \"name\": \"rebeca-lint\",\n"
      "          \"informationUri\": "
      "\"https://example.invalid/rebeca/tools/lint\",\n"
      "          \"rules\": [\n";
  const std::vector<RuleInfo>& known = rules();
  for (std::size_t i = 0; i < known.size(); ++i) {
    out += "            {\"id\": ";
    append_quoted(out, known[i].id);
    out += ", \"shortDescription\": {\"text\": ";
    append_quoted(out, known[i].summary);
    out += "}}";
    if (i + 1 < known.size()) out += ',';
    out += '\n';
  }
  out +=
      "          ]\n"
      "        }\n"
      "      },\n"
      "      \"results\": [\n";
  for (std::size_t i = 0; i < findings.size(); ++i) {
    const Finding& f = findings[i];
    out += "        {\"ruleId\": ";
    append_quoted(out, f.rule);
    out += ", \"level\": \"error\", \"message\": {\"text\": ";
    append_quoted(out, f.message);
    out +=
        "}, \"locations\": [{\"physicalLocation\": {\"artifactLocation\": "
        "{\"uri\": ";
    append_quoted(out, f.path);
    out += ", \"uriBaseId\": \"SRCROOT\"}, \"region\": {\"startLine\": ";
    out += std::to_string(f.line > 0 ? f.line : 1);
    out += "}}}]}";
    if (i + 1 < findings.size()) out += ',';
    out += '\n';
  }
  out +=
      "      ]\n"
      "    }\n"
      "  ]\n"
      "}\n";
  return out;
}

}  // namespace rebeca::lint
