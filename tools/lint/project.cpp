// Whole-program pass of rebeca-lint: builds the repo model (every file's
// scan plus the resolved local include graph) and runs LAYER-DAG over
// it, then folds in the per-file findings so one call lints the tree.
#include <algorithm>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "tools/lint/scan.hpp"

namespace rebeca::lint {

namespace {

using detail::Scan;

/// The declared layering of src/ modules. A module may include itself
/// and any module of a STRICTLY lower layer. The table is the contract:
/// a new src/ module must be placed here deliberately or LAYER-DAG
/// reports it as unregistered.
///
///   util(0) → sim(1) → filter(2) → {metrics, location, routing}(3)
///   → net(4) → client(5) → broker(6) → {workload, analysis}(7)
///   → scenario(8) → transport(9) → cli(10)
///
/// The table is keyed by directory, so new sources inside a registered
/// module need no edit here: routing/cover_index.{hpp,cpp} (the
/// admin-plane covering index) rides in routing(3) — below broker(6),
/// which owns the maintained instance, and above filter(2), whose
/// cover tests it decomposes.
const std::map<std::string, int>& layer_table() {
  static const std::map<std::string, int> kLayers = {
      {"util", 0},     {"sim", 1},      {"filter", 2},  {"metrics", 3},
      {"location", 3}, {"routing", 3},  {"net", 4},     {"client", 5},
      {"broker", 6},   {"workload", 7}, {"analysis", 7}, {"scenario", 8},
      {"transport", 9}, {"cli", 10},
  };
  return kLayers;
}

struct FileNode {
  const SourceFile* file = nullptr;
  Scan scan;
  std::string npath;
  std::string module;  // empty outside src/
  /// Resolved local includes: index into `nodes`, with the include line.
  std::vector<std::pair<std::size_t, int>> edges;
};

/// Resolves an include target against the model. Include style in this
/// repo is repo-root-relative ("src/filter/filter.hpp"), so an exact
/// path match is the common case; a suffix match covers tests fed with
/// absolute paths or fixtures under a virtual prefix.
std::size_t resolve(const std::vector<FileNode>& nodes,
                    const std::map<std::string, std::size_t>& by_path,
                    const std::string& target) {
  auto it = by_path.find(target);
  if (it != by_path.end()) return it->second;
  std::size_t hit = nodes.size();
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    if (detail::ends_with(nodes[i].npath, "/" + target)) {
      if (hit != nodes.size()) return nodes.size();  // ambiguous — skip
      hit = i;
    }
  }
  return hit;
}

/// DFS cycle detection over the resolved include graph. Reports each
/// cycle once, at the file where the DFS closes it, with the full
/// include chain in the message.
void find_cycles(const std::vector<FileNode>& nodes,
                 std::vector<Finding>& out) {
  enum class Color { white, grey, black };
  std::vector<Color> color(nodes.size(), Color::white);
  std::vector<std::size_t> stack;

  // Iterative DFS with an explicit edge cursor keeps deep include
  // chains off the call stack.
  struct Frame {
    std::size_t node;
    std::size_t edge = 0;
  };
  for (std::size_t root = 0; root < nodes.size(); ++root) {
    if (color[root] != Color::white) continue;
    std::vector<Frame> frames{{root}};
    color[root] = Color::grey;
    stack.push_back(root);
    while (!frames.empty()) {
      Frame& f = frames.back();
      if (f.edge < nodes[f.node].edges.size()) {
        const auto [next, line] = nodes[f.node].edges[f.edge++];
        if (color[next] == Color::white) {
          color[next] = Color::grey;
          stack.push_back(next);
          frames.push_back({next});
        } else if (color[next] == Color::grey) {
          // Close the loop: chain from `next`'s position on the stack
          // through the current node, back to `next`.
          std::string chain;
          bool in_cycle = false;
          for (std::size_t n : stack) {
            if (n == next) in_cycle = true;
            if (!in_cycle) continue;
            chain += nodes[n].npath + " -> ";
          }
          chain += nodes[next].npath;
          out.push_back({nodes[f.node].npath, line,
                         std::string(detail::kLayerDag),
                         "include cycle: " + chain});
        }
      } else {
        color[f.node] = Color::black;
        stack.pop_back();
        frames.pop_back();
      }
    }
  }
}

}  // namespace

std::vector<Finding> lint_project(const std::vector<SourceFile>& files,
                                  const Options& options) {
  const detail::ActiveRules active = detail::active_rules(options);

  std::vector<FileNode> nodes;
  nodes.reserve(files.size());
  std::map<std::string, std::size_t> by_path;
  for (const SourceFile& f : files) {
    FileNode n;
    n.file = &f;
    n.npath = detail::normalize(f.path);
    n.module = detail::module_of(n.npath);
    n.scan = detail::tokenize(f.content);
    by_path.emplace(n.npath, nodes.size());
    nodes.push_back(std::move(n));
  }
  for (FileNode& n : nodes) {
    for (const detail::Include& inc : n.scan.includes) {
      const std::size_t to = resolve(nodes, by_path, inc.target);
      if (to < nodes.size()) n.edges.emplace_back(to, inc.line);
    }
  }

  std::vector<Finding> all;
  const bool layering = active.count(detail::kLayerDag) != 0;
  const auto& layers = layer_table();

  for (FileNode& n : nodes) {
    // Per-file rules first, so project findings join the same
    // suppression pass (a pragma can cover a LAYER-DAG include line).
    std::vector<Finding> raw = detail::match_rules(n.npath, n.scan, active);

    if (layering && !n.module.empty()) {
      const auto self = layers.find(n.module);
      if (self == layers.end()) {
        raw.push_back({n.npath, 1, std::string(detail::kLayerDag),
                       "module 'src/" + n.module +
                           "/' is not in the layering table "
                           "(tools/lint/project.cpp) — register it at a "
                           "deliberate layer"});
      } else {
        for (const auto& [to, line] : n.edges) {
          const std::string& dep = nodes[to].module;
          if (dep.empty() || dep == n.module) continue;
          const auto target = layers.find(dep);
          if (target == layers.end()) continue;  // reported at that file
          if (target->second >= self->second) {
            raw.push_back(
                {n.npath, line, std::string(detail::kLayerDag),
                 "layering violation: src/" + n.module + "/ (layer " +
                     std::to_string(self->second) + ") includes src/" + dep +
                     "/ (layer " + std::to_string(target->second) +
                     ") — modules may only include strictly lower layers"});
          }
        }
      }
    }

    std::vector<Finding> kept =
        detail::finalize(n.npath, n.scan, std::move(raw), active);
    all.insert(all.end(), std::make_move_iterator(kept.begin()),
               std::make_move_iterator(kept.end()));
  }

  if (layering) find_cycles(nodes, all);

  std::sort(all.begin(), all.end(), [](const Finding& a, const Finding& b) {
    if (a.path != b.path) return a.path < b.path;
    if (a.line != b.line) return a.line < b.line;
    return a.rule < b.rule;
  });
  return all;
}

}  // namespace rebeca::lint
